#include "sim/event_sim.h"

#include <optional>

#include "sim/event_queue.h"
#include "sim/noise.h"
#include "sim/telemetry.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/tracer.h"

namespace pipemap {
namespace {

/// Mutable state of one module instance.
struct Instance {
  bool busy = false;
  /// Data set waiting at this instance's output for the downstream
  /// rendezvous; while set, the instance may not start its next input.
  std::optional<int> pending_send;
  /// Next data set this instance handles (m == 0: next to compute;
  /// m > 0: next to receive). Advances by the module's replica count.
  int next_dataset = 0;
};

class Engine {
 public:
  Engine(const TaskChain& chain, const Mapping& mapping,
         const SimOptions& options)
      : chain_(chain),
        mapping_(mapping),
        options_(options),
        noise_(options.noise, chain.size()),
        l_(mapping.num_modules()),
        telemetry_(mapping, options.num_datasets),
        instances_(l_),
        busy_time_(l_),
        activity_(l_),
        done_(options.num_datasets, 0.0),
        enter_(options.num_datasets, 0.0) {
    for (int m = 0; m < l_; ++m) {
      instances_[m].resize(mapping.modules[m].replicas);
      busy_time_[m].assign(mapping.modules[m].replicas, 0.0);
      for (int i = 0; i < mapping.modules[m].replicas; ++i) {
        instances_[m][i].next_dataset = i;
      }
    }
  }

  SimResult Run() {
    for (int i = 0; i < mapping_.modules[0].replicas; ++i) {
      StartSourceCompute(0, i);
    }
    queue_.RunAll();

    SimResult result;
    const int n = options_.num_datasets;
    result.makespan = done_[n - 1];
    const int warmup = std::min(options_.warmup, n - 1);
    result.throughput =
        warmup > 0 ? (n - warmup) / (done_[n - 1] - done_[warmup - 1])
                   : n / done_[n - 1];
    double latency_sum = 0.0;
    for (int d = 0; d < n; ++d) latency_sum += done_[d] - enter_[d];
    result.mean_latency = latency_sum / n;
    result.module_utilization.resize(l_);
    for (int m = 0; m < l_; ++m) {
      double total = 0.0;
      for (double b : busy_time_[m]) total += b;
      result.module_utilization[m] =
          total / (busy_time_[m].size() * result.makespan);
    }
    result.module_activity = activity_;
    if (options_.faults != nullptr && !options_.faults->empty()) {
      FaultImpact impact;
      impact.slowdown_events =
          options_.faults->CountKind(FaultKind::kSlowdown);
      impact.link_events =
          options_.faults->CountKind(FaultKind::kLinkDegrade);
      result.fault_impact = impact;
    }
    telemetry_.Finish(result);
    return result;
  }

 private:
  double BodyTime(int module, int instance, int procs, double at) {
    const ModuleAssignment& mod = mapping_.modules[module];
    // Slowdown windows stretch the whole phase by the factor active at its
    // start (same rule as the pipeline simulator).
    const double factor =
        options_.faults != nullptr
            ? options_.faults->ComputeFactor(module, instance, at)
            : 1.0;
    double body = 0.0;
    for (int t = mod.first_task; t <= mod.last_task; ++t) {
      body += chain_.costs().Exec(t, procs) * noise_.ExecBias(t);
      if (t < mod.last_task) {
        body += chain_.costs().ICom(t, procs) * noise_.IComBias(t);
      }
    }
    return body * factor;
  }

  /// Module-0 instances pull external input whenever they are free.
  void StartSourceCompute(int m, int i) {
    Instance& inst = instances_[m][i];
    if (inst.busy || inst.pending_send.has_value()) return;
    const int d = inst.next_dataset;
    if (d >= options_.num_datasets) return;
    inst.next_dataset += mapping_.modules[m].replicas;
    inst.busy = true;
    enter_[d] = queue_.now();
    const double body = BodyTime(
        m, i, mapping_.modules[m].procs_per_instance, queue_.now());
    busy_time_[m][i] += body;
    activity_[m].compute_s += body;
    telemetry_.RecordPhase(m, i, TraceEvent::Phase::kCompute, d,
                           queue_.now(), queue_.now() + body);
    queue_.Schedule(queue_.now() + body,
                    [this, m, i, d] { ComputeDone(m, i, d); });
  }

  void ComputeDone(int m, int i, int d) {
    Instance& inst = instances_[m][i];
    inst.busy = false;
    if (m == l_ - 1) {
      done_[d] = queue_.now();
      telemetry_.RecordDataset(d, enter_[d], done_[d]);
      // Last module writes external output for free; the instance is free
      // for its next input.
      if (l_ == 1) {
        StartSourceCompute(m, i);
      } else {
        TryStartTransfer(m, i);
      }
      return;
    }
    inst.pending_send = d;
    telemetry_.RecordQueuePush(m + 1, queue_.now());
    TryStartTransfer(m + 1, d % mapping_.modules[m + 1].replicas);
  }

  /// Attempts the rendezvous delivering receiver (m, i)'s next expected
  /// data set. Fires only when the upstream producer has it pending and
  /// the receiver is free.
  void TryStartTransfer(int m, int i) {
    Instance& receiver = instances_[m][i];
    if (receiver.busy || receiver.pending_send.has_value()) return;
    const int d = receiver.next_dataset;
    if (d >= options_.num_datasets) return;
    const int sender_index = d % mapping_.modules[m - 1].replicas;
    Instance& sender = instances_[m - 1][sender_index];
    if (sender.busy || sender.pending_send != d) return;

    receiver.next_dataset += mapping_.modules[m].replicas;
    sender.busy = true;
    receiver.busy = true;
    const int edge = mapping_.modules[m].first_task - 1;
    double dur =
        chain_.costs().ECom(edge, mapping_.modules[m - 1].procs_per_instance,
                            mapping_.modules[m].procs_per_instance) *
        noise_.EComBias(edge);
    if (options_.faults != nullptr) {
      dur *= options_.faults->TransferFactor(m - 1, queue_.now());
    }
    if (options_.transfer_adjustment) {
      dur = options_.transfer_adjustment(edge, sender_index, i, dur);
    }
    busy_time_[m - 1][sender_index] += dur;
    busy_time_[m][i] += dur;
    activity_[m - 1].send_s += dur;
    activity_[m].receive_s += dur;
    telemetry_.RecordQueuePop(m, queue_.now());
    telemetry_.RecordPhase(m - 1, sender_index, TraceEvent::Phase::kSend, d,
                           queue_.now(), queue_.now() + dur);
    telemetry_.RecordPhase(m, i, TraceEvent::Phase::kReceive, d,
                           queue_.now(), queue_.now() + dur);
    queue_.Schedule(queue_.now() + dur, [this, m, i, sender_index, d] {
      TransferDone(m, i, sender_index, d);
    });
  }

  void TransferDone(int m, int i, int sender_index, int d) {
    Instance& sender = instances_[m - 1][sender_index];
    sender.busy = false;
    sender.pending_send.reset();
    // The sender resumes its own input loop.
    if (m - 1 == 0) {
      StartSourceCompute(0, sender_index);
    } else {
      TryStartTransfer(m - 1, sender_index);
    }

    // The receiver computes immediately after the rendezvous.
    const double body = BodyTime(
        m, i, mapping_.modules[m].procs_per_instance, queue_.now());
    busy_time_[m][i] += body;
    activity_[m].compute_s += body;
    telemetry_.RecordPhase(m, i, TraceEvent::Phase::kCompute, d,
                           queue_.now(), queue_.now() + body);
    queue_.Schedule(queue_.now() + body,
                    [this, m, i, d] { ComputeDone(m, i, d); });
  }

  const TaskChain& chain_;
  const Mapping& mapping_;
  const SimOptions& options_;
  NoiseModel noise_;
  int l_;
  SimTelemetry telemetry_;
  EventQueue queue_;
  std::vector<std::vector<Instance>> instances_;
  std::vector<std::vector<double>> busy_time_;
  std::vector<ModuleActivity> activity_;
  std::vector<double> done_;
  std::vector<double> enter_;
};

}  // namespace

EventDrivenSimulator::EventDrivenSimulator(const TaskChain& chain)
    : chain_(&chain) {}

SimResult EventDrivenSimulator::Run(const Mapping& mapping,
                                    const SimOptions& options) const {
  ValidateMapping(mapping, *chain_, mapping.TotalProcs());
  PIPEMAP_CHECK(options.num_datasets >= 1,
                "EventDrivenSimulator: need at least one data set");
  PIPEMAP_CHECK(options.noise.jitter_stddev == 0.0 &&
                    options.noise.contention_coeff == 0.0,
                "EventDrivenSimulator: jitter/contention are order-dependent"
                " and not supported by this engine");
  PIPEMAP_CHECK(!options.collect_profile && !options.collect_trace,
                "EventDrivenSimulator: profile/trace collection unsupported");
  if (options.faults != nullptr) {
    options.faults->Validate(mapping.num_modules());
    // Crash rerouting changes which instance serves a data set, which this
    // engine's fixed round-robin rendezvous matching cannot express; the
    // pipeline simulator handles crashes.
    PIPEMAP_CHECK(options.faults->CountKind(FaultKind::kCrash) == 0,
                  "EventDrivenSimulator: crash events are not supported by"
                  " this engine (use PipelineSimulator)");
  }
  PIPEMAP_TRACE_SPAN("sim.event.run", "sim", options.num_datasets);
  PIPEMAP_COUNTER_ADD("sim.event.datasets",
                      static_cast<std::uint64_t>(options.num_datasets));
  Engine engine(*chain_, mapping, options);
  return engine.Run();
}

}  // namespace pipemap
