// Profile data harvested from simulated executions.
//
// The shape mirrors what the Fx mapping tool collects from instrumented
// runs: per-task execution timings at observed processor counts, per-edge
// internal redistribution timings, and per-edge external transfer timings
// at observed (sender, receiver) processor-count pairs. The profiling
// subsystem fits Section-5 polynomial models to these samples.
#pragma once

#include <utility>
#include <vector>

#include "costmodel/piecewise.h"

namespace pipemap {

struct Profile {
  /// exec_samples[task] = observed (procs, seconds) pairs.
  std::vector<std::vector<std::pair<int, double>>> exec_samples;
  /// icom_samples[edge] = observed (procs, seconds) pairs.
  std::vector<std::vector<std::pair<int, double>>> icom_samples;
  /// ecom_samples[edge] = observed (sender, receiver, seconds) triples.
  std::vector<std::vector<TabulatedPairCost::Sample>> ecom_samples;

  explicit Profile(int num_tasks = 0)
      : exec_samples(num_tasks),
        icom_samples(num_tasks > 0 ? num_tasks - 1 : 0),
        ecom_samples(num_tasks > 0 ? num_tasks - 1 : 0) {}

  int num_tasks() const { return static_cast<int>(exec_samples.size()); }

  /// Appends all samples of `other` (must describe the same chain shape).
  void Merge(const Profile& other);

  /// Total number of samples across all categories.
  std::size_t TotalSamples() const;
};

}  // namespace pipemap
