#include "sim/trace.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "support/error.h"

namespace pipemap {
namespace {

char PhaseChar(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kReceive:
      return '<';
    case TraceEvent::Phase::kCompute:
      return '#';
    case TraceEvent::Phase::kSend:
      return '>';
  }
  return '?';
}

const char* PhaseName(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kReceive:
      return "receive";
    case TraceEvent::Phase::kCompute:
      return "compute";
    case TraceEvent::Phase::kSend:
      return "send";
  }
  return "phase";
}

}  // namespace

std::string ExecutionTrace::RenderGantt(int width, double t0,
                                        double t1) const {
  PIPEMAP_CHECK(width >= 8, "RenderGantt: width too small");
  if (t1 < 0.0) t1 = makespan;
  PIPEMAP_CHECK(t1 > t0, "RenderGantt: empty time window");

  // Collect rows in (module, instance) order.
  std::map<std::pair<int, int>, std::vector<std::array<double, 3>>> rows;
  for (const TraceEvent& e : events) {
    rows[{e.module, e.instance}].push_back(
        {e.start, e.end, static_cast<double>(PhaseChar(e.phase))});
  }

  const double dt = (t1 - t0) / width;
  std::ostringstream os;
  os << "time " << t0 << " .. " << t1 << " s  ('<' recv, '#' compute, '>' "
     << "send, '.' idle)\n";
  for (const auto& [key, intervals] : rows) {
    std::string line(width, '.');
    // For each column pick the phase covering the largest share of it.
    for (int c = 0; c < width; ++c) {
      const double lo = t0 + c * dt;
      const double hi = lo + dt;
      double best_cover = 0.0;
      char best_char = '.';
      for (const auto& iv : intervals) {
        const double cover =
            std::min(hi, iv[1]) - std::max(lo, iv[0]);
        if (cover > best_cover) {
          best_cover = cover;
          best_char = static_cast<char>(iv[2]);
        }
      }
      line[c] = best_char;
    }
    os << "m" << key.first << "/i" << key.second << " |" << line << "|\n";
  }
  return os.str();
}

std::vector<TraceEvent> ExecutionTrace::InstanceTimeline(
    int module, int instance) const {
  std::vector<TraceEvent> timeline;
  for (const TraceEvent& e : events) {
    if (e.module == module && e.instance == instance) {
      timeline.push_back(e);
    }
  }
  std::sort(timeline.begin(), timeline.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start < b.start;
            });
  return timeline;
}

std::string ExecutionTrace::ToChromeJson() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  // Label each module's row group once.
  std::map<int, bool> seen_modules;
  for (const TraceEvent& e : events) {
    if (seen_modules.emplace(e.module, true).second) {
      sep();
      os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
         << e.module << ", \"tid\": 0, \"args\": {\"name\": \"module "
         << e.module << "\"}}";
    }
  }
  for (const TraceEvent& e : events) {
    sep();
    os << "{\"name\": \"" << PhaseName(e.phase)
       << "\", \"cat\": \"sim\", \"ph\": \"X\", \"pid\": " << e.module
       << ", \"tid\": " << e.instance << ", \"ts\": " << e.start * 1e6
       << ", \"dur\": " << (e.end - e.start) * 1e6
       << ", \"args\": {\"dataset\": " << e.dataset << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace pipemap
