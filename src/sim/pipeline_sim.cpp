#include "sim/pipeline_sim.h"

#include <algorithm>

#include "sim/telemetry.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/tracer.h"

namespace pipemap {

PipelineSimulator::PipelineSimulator(const TaskChain& chain)
    : chain_(&chain) {}

SimResult PipelineSimulator::Run(const Mapping& mapping,
                                 const SimOptions& options) const {
  const TaskChain& chain = *chain_;
  ValidateMapping(mapping, chain, mapping.TotalProcs());
  PIPEMAP_CHECK(options.num_datasets >= 1,
                "PipelineSimulator: need at least one data set");
  const int n = options.num_datasets;
  const int l = mapping.num_modules();
  const ChainCostModel& costs = chain.costs();

  PIPEMAP_TRACE_SPAN("sim.pipeline.run", "sim", n);
  PIPEMAP_COUNTER_ADD("sim.pipeline.datasets", static_cast<std::uint64_t>(n));
  PIPEMAP_COUNTER_ADD(
      "sim.pipeline.transfers",
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(l - 1));

  const FaultPlan* faults =
      (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                              : nullptr;
  FaultImpact impact;
  bool any_crash = false;
  if (faults != nullptr) {
    faults->Validate(l);
    impact.crash_events = faults->CountKind(FaultKind::kCrash);
    impact.slowdown_events = faults->CountKind(FaultKind::kSlowdown);
    impact.link_events = faults->CountKind(FaultKind::kLinkDegrade);
    any_crash = impact.crash_events > 0;
    PIPEMAP_COUNTER_ADD("sim.fault.events",
                        static_cast<std::uint64_t>(faults->events.size()));
  }

  NoiseModel noise(options.noise, chain.size());
  SimTelemetry telemetry(mapping, n);

  // Per-instance availability and busy-time accounting.
  std::vector<std::vector<double>> free_at(l);
  std::vector<std::vector<double>> busy(l);
  for (int m = 0; m < l; ++m) {
    free_at[m].assign(mapping.modules[m].replicas, 0.0);
    busy[m].assign(mapping.modules[m].replicas, 0.0);
  }
  std::vector<ModuleActivity> activity(l);

  // Transfer intervals already started, for contention counting.
  std::vector<std::pair<double, double>> transfers;
  auto concurrency_at = [&](double t) {
    int count = 1;  // the transfer being scheduled
    for (const auto& [s, e] : transfers) {
      if (s <= t && t < e) ++count;
    }
    return count;
  };

  Profile profile(chain.size());
  ExecutionTrace trace;

  std::vector<double> done(n, 0.0);
  std::vector<double> enter(n, 0.0);
  // Completion time and serving instance of data set d at the *previous*
  // module while scanning modules left to right. Without faults the
  // serving instance is always d % replicas; crash rerouting can move it.
  double upstream_done = 0.0;
  int upstream_inst = 0;

  for (int d = 0; d < n; ++d) {
    for (int m = 0; m < l; ++m) {
      const ModuleAssignment& mod = mapping.modules[m];
      int inst = d % mod.replicas;
      const int p = mod.procs_per_instance;

      if (any_crash) {
        // A crashed instance accepts no new work from its crash time
        // onward (work already started completes); its data sets route to
        // the surviving sibling that can start earliest, lowest index on
        // ties.
        auto tentative = [&](int i) {
          return m == 0 ? free_at[m][i]
                        : std::max({upstream_done,
                                    free_at[m - 1][upstream_inst],
                                    free_at[m][i]});
        };
        if (faults->CrashedAt(m, inst, tentative(inst))) {
          int best = -1;
          double best_t = 0.0;
          for (int i = 0; i < mod.replicas; ++i) {
            const double t = tentative(i);
            if (faults->CrashedAt(m, i, t)) continue;
            if (best < 0 || t < best_t) {
              best = i;
              best_t = t;
            }
          }
          if (best < 0) {
            throw Infeasible("PipelineSimulator: every instance of module " +
                             std::to_string(m) + " has crashed");
          }
          inst = best;
          ++impact.reroutes;
          PIPEMAP_COUNTER_ADD("sim.fault.reroutes", 1);
        }
      }

      double start;
      if (m == 0) {
        // External input is always available.
        start = free_at[m][inst];
        enter[d] = start;
      } else {
        const ModuleAssignment& prev = mapping.modules[m - 1];
        const int sender = upstream_inst;
        const int edge = mod.first_task - 1;
        // The data set is "queued" at m's input from the moment the
        // upstream compute produced it until the rendezvous starts.
        telemetry.RecordQueuePush(m, upstream_done);
        const double t_start =
            std::max({upstream_done, free_at[m - 1][sender],
                      free_at[m][inst]});
        telemetry.RecordQueuePop(m, t_start);
        double dur = costs.ECom(edge, prev.procs_per_instance, p) *
                     noise.EComBias(edge) * noise.Jitter() *
                     noise.ContentionFactor(concurrency_at(t_start));
        if (faults != nullptr) {
          dur *= faults->TransferFactor(m - 1, t_start);
        }
        if (options.transfer_adjustment) {
          dur = options.transfer_adjustment(edge, sender, inst, dur);
        }
        const double t_end = t_start + dur;
        if (options.noise.contention_coeff > 0.0) {
          transfers.emplace_back(t_start, t_end);
        }
        if (options.collect_profile) {
          profile.ecom_samples[edge].push_back(
              {prev.procs_per_instance, p, dur});
        }
        // The sender is occupied for the duration of the rendezvous; time
        // spent waiting for the receiver to become free is idle time.
        busy[m - 1][sender] += t_end - t_start;
        free_at[m - 1][sender] = t_end;
        busy[m][inst] += t_end - t_start;
        activity[m - 1].send_s += t_end - t_start;
        activity[m].receive_s += t_end - t_start;
        telemetry.RecordPhase(m - 1, sender, TraceEvent::Phase::kSend, d,
                              t_start, t_end);
        telemetry.RecordPhase(m, inst, TraceEvent::Phase::kReceive, d,
                              t_start, t_end);
        if (options.collect_trace) {
          trace.events.push_back(TraceEvent{m - 1, sender, d,
                                            TraceEvent::Phase::kSend,
                                            t_start, t_end});
          trace.events.push_back(TraceEvent{m, inst, d,
                                            TraceEvent::Phase::kReceive,
                                            t_start, t_end});
        }
        start = t_end;
      }

      // Compute phase: member task executions plus internal
      // redistributions, each an observable sub-phase. A slowdown window
      // covering the phase's start stretches the whole phase.
      const double compute_factor =
          faults != nullptr ? faults->ComputeFactor(m, inst, start) : 1.0;
      double body = 0.0;
      for (int t = mod.first_task; t <= mod.last_task; ++t) {
        const double dur = costs.Exec(t, p) * noise.ExecBias(t) *
                           noise.Jitter() * compute_factor;
        body += dur;
        if (options.collect_profile) {
          profile.exec_samples[t].push_back({p, dur});
        }
        if (t < mod.last_task) {
          const double redis = costs.ICom(t, p) * noise.IComBias(t) *
                               noise.Jitter() * compute_factor;
          body += redis;
          if (options.collect_profile) {
            profile.icom_samples[t].push_back({p, redis});
          }
        }
      }
      const double end = start + body;
      busy[m][inst] += end - start;
      free_at[m][inst] = end;
      activity[m].compute_s += end - start;
      telemetry.RecordPhase(m, inst, TraceEvent::Phase::kCompute, d, start,
                            end);
      if (options.collect_trace) {
        trace.events.push_back(TraceEvent{
            m, inst, d, TraceEvent::Phase::kCompute, start, end});
      }
      upstream_done = end;
      upstream_inst = inst;
    }
    done[d] = upstream_done;
    telemetry.RecordDataset(d, enter[d], done[d]);
  }

  SimResult result;
  result.makespan = done[n - 1];
  const int warmup = std::min(options.warmup, n - 1);
  if (warmup > 0) {
    result.throughput =
        static_cast<double>(n - warmup) / (done[n - 1] - done[warmup - 1]);
  } else {
    result.throughput = static_cast<double>(n) / done[n - 1];
  }
  double latency_sum = 0.0;
  for (int d = 0; d < n; ++d) latency_sum += done[d] - enter[d];
  result.mean_latency = latency_sum / n;
  result.module_utilization.resize(l);
  for (int m = 0; m < l; ++m) {
    double total = 0.0;
    for (double b : busy[m]) total += b;
    result.module_utilization[m] =
        total / (busy[m].size() * result.makespan);
  }
  result.module_activity = std::move(activity);
  if (faults != nullptr) result.fault_impact = impact;
  if (options.collect_profile) result.profile = std::move(profile);
  if (options.collect_trace) {
    trace.makespan = result.makespan;
    result.trace = std::move(trace);
  }
  telemetry.Finish(result);
  return result;
}

}  // namespace pipemap
