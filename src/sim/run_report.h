// Unified machine-readable run report: one JSON document per
// map-and-simulate run, joining what the model promised with what the
// executed pipeline delivered.
//
// The report is the integration point of the observability stack: it
// embeds the mapping, the model's predictions (throughput, latency,
// bottleneck), the simulated measurements, the per-module attribution
// ranking (sim/attribution.h), and optionally a full metrics snapshot
// and the path of an exported Chrome trace. Schema (see DESIGN.md §5d):
//
//   {
//     "schema_version": 1,
//     "workload": {"tasks": K, "procs": P, "datasets": N},
//     "mapping": {"modules": [{"module", "first_task", "last_task",
//                              "procs_per_instance", "replicas"}, ...]},
//     "predicted": {"throughput", "latency_s", "bottleneck_module"},
//     "simulated": {"throughput", "mean_latency_s", "makespan_s",
//                   "bottleneck_module",
//                   "module_utilization": [...]},
//     "attribution": [{"module", "replicas", "predicted_effective_s",
//                      "observed_effective_s", "divergence",
//                      "utilization"}, ...],     // ranked, worst first
//     "metrics": {...} | null,                   // MetricsSnapshot::ToJson
//     "trace_path": "..." | null
//   }
//
// All doubles are emitted with AppendJsonDouble-style finite checks
// (non-finite values become null), so the document always parses.
#pragma once

#include <string>

#include "core/evaluator.h"
#include "core/mapping.h"
#include "sim/attribution.h"
#include "sim/pipeline_sim.h"
#include "support/metrics.h"

namespace pipemap {

struct RunReportOptions {
  /// Number of data sets the simulation pushed through (recorded in the
  /// workload section).
  int num_datasets = 0;
  /// When set, the report embeds this snapshot under "metrics".
  const MetricsSnapshot* metrics = nullptr;
  /// When non-empty, recorded verbatim under "trace_path".
  std::string trace_path;
};

/// Assembles the run-report JSON document. `attribution` must come from
/// AttributeBottleneck over the same (mapping, result) pair.
std::string BuildRunReportJson(const Evaluator& evaluator,
                               const Mapping& mapping,
                               const SimResult& result,
                               const BottleneckAttribution& attribution,
                               const RunReportOptions& options);

}  // namespace pipemap
