#include "sim/run_report.h"

#include "support/json_writer.h"

namespace pipemap {

std::string BuildRunReportJson(const Evaluator& evaluator,
                               const Mapping& mapping,
                               const SimResult& result,
                               const BottleneckAttribution& attribution,
                               const RunReportOptions& options) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);

  w.Key("workload").BeginObject();
  w.Key("tasks").Int(evaluator.num_tasks());
  w.Key("procs").Int(mapping.TotalProcs());
  w.Key("datasets").Int(options.num_datasets);
  w.EndObject();

  w.Key("mapping").BeginObject();
  w.Key("modules").BeginArray();
  for (int m = 0; m < mapping.num_modules(); ++m) {
    const ModuleAssignment& mod = mapping.modules[m];
    w.BeginObject();
    w.Key("module").Int(m);
    w.Key("first_task").Int(mod.first_task);
    w.Key("last_task").Int(mod.last_task);
    w.Key("procs_per_instance").Int(mod.procs_per_instance);
    w.Key("replicas").Int(mod.replicas);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("predicted").BeginObject();
  w.Key("throughput").Double(attribution.predicted_throughput);
  w.Key("latency_s").Double(evaluator.Latency(mapping));
  w.Key("bottleneck_module").Int(attribution.predicted_bottleneck);
  w.EndObject();

  w.Key("simulated").BeginObject();
  w.Key("throughput").Double(result.throughput);
  w.Key("mean_latency_s").Double(result.mean_latency);
  w.Key("makespan_s").Double(result.makespan);
  w.Key("bottleneck_module").Int(attribution.observed_bottleneck);
  w.Key("module_utilization").BeginArray();
  for (const double u : result.module_utilization) w.Double(u);
  w.EndArray();
  w.EndObject();

  w.Key("faults");
  if (result.fault_impact.has_value()) {
    const FaultImpact& f = *result.fault_impact;
    w.BeginObject();
    w.Key("crash_events").Int(f.crash_events);
    w.Key("slowdown_events").Int(f.slowdown_events);
    w.Key("link_events").Int(f.link_events);
    w.Key("reroutes").Int(f.reroutes);
    w.EndObject();
  } else {
    w.Null();
  }

  w.Key("attribution").BeginArray();
  for (const ModuleAttribution& a : attribution.modules) {
    w.BeginObject();
    w.Key("module").Int(a.module);
    w.Key("replicas").Int(a.replicas);
    w.Key("predicted_effective_s").Double(a.predicted_effective_s);
    w.Key("observed_effective_s").Double(a.observed_effective_s);
    w.Key("divergence").Double(a.divergence);
    w.Key("utilization").Double(a.utilization);
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics");
  if (options.metrics) {
    w.Raw(options.metrics->ToJson());
  } else {
    w.Null();
  }

  w.Key("trace_path");
  if (options.trace_path.empty()) {
    w.Null();
  } else {
    w.String(options.trace_path);
  }
  w.EndObject();
  return w.str();
}

}  // namespace pipemap
