#include "sim/run_report.h"

#include <cmath>
#include <sstream>

namespace pipemap {
namespace {

void AppendDouble(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  out << tmp.str();
}

void AppendString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

/// Re-indents an embedded JSON document (the metrics snapshot arrives
/// pretty-printed at top level) so the report stays readable.
void AppendEmbedded(std::ostringstream& out, const std::string& json,
                    const std::string& indent) {
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '\n') {
      if (i + 1 < json.size()) out << '\n' << indent;
    } else {
      out << c;
    }
  }
}

}  // namespace

std::string BuildRunReportJson(const Evaluator& evaluator,
                               const Mapping& mapping,
                               const SimResult& result,
                               const BottleneckAttribution& attribution,
                               const RunReportOptions& options) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";

  out << "  \"workload\": {\"tasks\": " << evaluator.num_tasks()
      << ", \"procs\": " << mapping.TotalProcs()
      << ", \"datasets\": " << options.num_datasets << "},\n";

  out << "  \"mapping\": {\"modules\": [";
  for (int m = 0; m < mapping.num_modules(); ++m) {
    const ModuleAssignment& mod = mapping.modules[m];
    out << (m == 0 ? "\n    " : ",\n    ");
    out << "{\"module\": " << m << ", \"first_task\": " << mod.first_task
        << ", \"last_task\": " << mod.last_task
        << ", \"procs_per_instance\": " << mod.procs_per_instance
        << ", \"replicas\": " << mod.replicas << "}";
  }
  out << "\n  ]},\n";

  out << "  \"predicted\": {\"throughput\": ";
  AppendDouble(out, attribution.predicted_throughput);
  out << ", \"latency_s\": ";
  AppendDouble(out, evaluator.Latency(mapping));
  out << ", \"bottleneck_module\": " << attribution.predicted_bottleneck
      << "},\n";

  out << "  \"simulated\": {\"throughput\": ";
  AppendDouble(out, result.throughput);
  out << ", \"mean_latency_s\": ";
  AppendDouble(out, result.mean_latency);
  out << ", \"makespan_s\": ";
  AppendDouble(out, result.makespan);
  out << ", \"bottleneck_module\": " << attribution.observed_bottleneck
      << ", \"module_utilization\": [";
  for (std::size_t m = 0; m < result.module_utilization.size(); ++m) {
    if (m > 0) out << ", ";
    AppendDouble(out, result.module_utilization[m]);
  }
  out << "]},\n";

  out << "  \"attribution\": [";
  for (std::size_t i = 0; i < attribution.modules.size(); ++i) {
    const ModuleAttribution& a = attribution.modules[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    out << "{\"module\": " << a.module << ", \"replicas\": " << a.replicas
        << ", \"predicted_effective_s\": ";
    AppendDouble(out, a.predicted_effective_s);
    out << ", \"observed_effective_s\": ";
    AppendDouble(out, a.observed_effective_s);
    out << ", \"divergence\": ";
    AppendDouble(out, a.divergence);
    out << ", \"utilization\": ";
    AppendDouble(out, a.utilization);
    out << "}";
  }
  out << "\n  ],\n";

  out << "  \"metrics\": ";
  if (options.metrics) {
    AppendEmbedded(out, options.metrics->ToJson(), "  ");
  } else {
    out << "null";
  }
  out << ",\n";

  out << "  \"trace_path\": ";
  if (options.trace_path.empty()) {
    out << "null";
  } else {
    AppendString(out, options.trace_path);
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace pipemap
