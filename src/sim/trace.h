// Execution traces: what every module instance did, when.
//
// The paper's Figure 2 is a timeline of tasks alternating between
// computation and (rendezvous) communication. The simulator can record
// that timeline exactly; RenderGantt draws it as text, one row per module
// instance.
#pragma once

#include <string>
#include <vector>

#include "core/task.h"

namespace pipemap {

/// One busy interval of one module instance.
struct TraceEvent {
  enum class Phase {
    kReceive,  // rendezvous, receiving side
    kCompute,  // module body (task executions + internal redistributions)
    kSend,     // rendezvous, sending side
  };

  int module = 0;
  int instance = 0;
  int dataset = 0;
  Phase phase = Phase::kCompute;
  double start = 0.0;
  double end = 0.0;
};

struct ExecutionTrace {
  std::vector<TraceEvent> events;
  double makespan = 0.0;

  /// Renders a text Gantt chart: one row per module instance, `width`
  /// character columns spanning [t0, t1) (defaults to the whole run).
  /// Legend: '<' receive, '#' compute, '>' send, '.' idle. When multiple
  /// phases fall into one column, the busiest wins.
  std::string RenderGantt(int width = 72, double t0 = 0.0,
                          double t1 = -1.0) const;

  /// Events of one instance, in time order.
  std::vector<TraceEvent> InstanceTimeline(int module, int instance) const;

  /// Chrome trace-event JSON of the simulated timeline (load in
  /// chrome://tracing or https://ui.perfetto.dev): one complete event
  /// ("ph": "X") per busy interval with pid = module, tid = instance,
  /// timestamps in microseconds of simulated time, and the data set index
  /// under args. Emits process_name metadata per module so the viewer
  /// labels rows "module <m>". Unlike support/tracer.h this export needs
  /// no global collector — it serializes exactly this trace object.
  std::string ToChromeJson() const;
};

}  // namespace pipemap
