// Pipeline-runtime telemetry: what the *executing pipeline* did, fed into
// the same observability stack that watches the mappers decide.
//
// PR 2 instrumented the mapping engines; the simulators still reported
// only end-to-end numbers. SimTelemetry closes that gap: the simulation
// engines call its hooks with the simulated-time values they already
// compute, and the hooks publish
//   * per-module utilization / occupancy gauges and queue-depth peaks,
//   * per-data-set stage-latency and module-service-time histograms,
//   * a per-run throughput / latency / makespan gauge set
// through the process-wide MetricsRegistry (support/metrics.h), plus
//   * one simulated-time span per (module, instance) activity and per
//     data set, and queue-depth counter events,
// through the Chrome-trace Tracer (support/tracer.h) on virtual lanes —
// so an exported trace shows the pipeline executing, not just the mapper
// deciding.
//
// Cost and purity contract (mirrors DESIGN.md §5c):
//   * telemetry only ever READS simulator state — it never perturbs the
//     timing recurrence, the noise stream, or any result field, so
//     simulated results are byte-identical with collection on, off, or
//     compiled out;
//   * the whole object is inert unless MetricsRegistry::Enabled() or
//     Tracer::Enabled() held at construction: the disabled-path cost of a
//     simulation run is two relaxed atomic loads total (hooks early-out on
//     one cached bool);
//   * under PIPEMAP_NO_OBSERVABILITY every hook is an empty inline and the
//     class carries no state, so instrumented simulators compile to
//     exactly their uninstrumented selves.
//
// Metric names follow the "<subsystem>.<metric>" convention; per-module
// series embed the module index as its own segment:
//   sim.stage.receive_s / sim.stage.compute_s / sim.stage.send_s
//   sim.dataset.latency_s            per-data-set pipeline latency
//   sim.queue.depth                  input-queue depth at change points
//   sim.module.<m>.stage_latency_s   per-phase latency of module m
//   sim.module.<m>.utilization       busy fraction over the run
//   sim.module.<m>.occupancy         mean busy instances (util * replicas)
//   sim.module.<m>.queue_depth_peak  worst input-queue depth
//   sim.run.throughput / sim.run.mean_latency_s / sim.run.makespan_s
//   sim.telemetry.runs               counter of observed simulations
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "sim/trace.h"

namespace pipemap {

struct SimResult;

#if defined(PIPEMAP_NO_OBSERVABILITY)

/// Compiled-out stub: same surface, no state, every hook an empty inline.
class SimTelemetry {
 public:
  SimTelemetry(const Mapping&, int) {}
  bool active() const { return false; }
  void RecordPhase(int, int, TraceEvent::Phase, int, double, double) {}
  void RecordQueuePush(int, double) {}
  void RecordQueuePop(int, double) {}
  void RecordDataset(int, double, double) {}
  void Finish(const SimResult&) {}
};

#else

class SimTelemetry {
 public:
  /// Samples the collection switches once; `mapping` fixes the module /
  /// instance geometry (lane assignment, per-module metric handles).
  SimTelemetry(const Mapping& mapping, int num_datasets);
  ~SimTelemetry();
  SimTelemetry(const SimTelemetry&) = delete;
  SimTelemetry& operator=(const SimTelemetry&) = delete;

  /// True when construction found metrics or tracing enabled. Hooks are
  /// safe to call either way (they early-out when inactive).
  bool active() const { return metrics_ || tracing_; }

  /// One busy interval of one module instance, in simulated seconds.
  void RecordPhase(int module, int instance, TraceEvent::Phase phase,
                   int dataset, double start_s, double end_s);

  /// A data set became ready at `module`'s input (upstream compute done) /
  /// was consumed from it (rendezvous started). Events may arrive out of
  /// time order — the pipeline engine scans data-set-major — so the series
  /// is buffered and ordered at Finish.
  void RecordQueuePush(int module, double t_s);
  void RecordQueuePop(int module, double t_s);

  /// A data set completed the whole pipeline.
  void RecordDataset(int dataset, double enter_s, double done_s);

  /// Publishes the end-of-run gauges (utilization, occupancy, run
  /// summary) and flushes the queue-depth series. Call once, after the
  /// engine assembled `result`.
  void Finish(const SimResult& result);

 private:
  struct ModuleHandles;
  struct QueueEvent {
    int module = 0;
    double t_s = 0.0;
    int delta = 0;  // +1 push, -1 pop
  };

  int LaneOf(int module, int instance) const;
  static std::uint64_t ToNs(double seconds);

  bool metrics_ = false;
  bool tracing_ = false;
  int num_datasets_ = 0;
  std::vector<int> replicas_;
  /// Lane index of (module, 0); instance lanes follow contiguously. Lane 0
  /// is the per-data-set row.
  std::vector<int> lane_base_;
  std::vector<ModuleHandles> handles_;  // metrics_ only
  std::vector<QueueEvent> queue_events_;
};

#endif  // PIPEMAP_NO_OBSERVABILITY

}  // namespace pipemap
