// Pipeline execution simulator (the paper's Figure 2 execution model).
//
// Simulates a mapped task chain processing a stream of data sets:
//   * each module runs as `replicas` instances; data set d is handled by
//     instance d mod r (round-robin, as in Figure 3),
//   * within an instance, activities are strictly ordered per data set:
//     receive, compute (task executions + internal redistributions), send,
//   * an inter-module transfer is a rendezvous — sender and receiver
//     instances are both occupied for the entire communication step, the
//     defining property of the paper's execution model,
//   * the first module reads external input (always available) and the
//     last writes external output (free).
//
// Because instance activity order is deterministic, the simulation advances
// in data-set-major order with exact timing recurrences; this is equivalent
// to (and far cheaper than) a general event queue for this model.
//
// The simulator plays the role of the paper's iWarp testbed: it executes
// *ground-truth* cost functions (with optional systematic bias, jitter, and
// transfer contention from sim/noise.h), measures steady-state throughput,
// and can harvest per-phase profiles exactly like an instrumented run.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/mapping.h"
#include "core/task.h"
#include "fault/fault_plan.h"
#include "sim/noise.h"
#include "sim/profile.h"
#include "sim/trace.h"

namespace pipemap {

struct SimOptions {
  /// Data sets pushed through the pipeline.
  int num_datasets = 200;
  /// Leading data sets excluded from the throughput measurement (pipeline
  /// fill transient).
  int warmup = 50;
  NoiseSpec noise;
  /// When set, per-phase timings are recorded into SimResult::profile.
  bool collect_profile = false;
  /// When set, every busy interval is recorded into SimResult::trace
  /// (memory grows with num_datasets * modules; use for visualization and
  /// debugging, not for long measurement runs).
  bool collect_trace = false;

  /// Optional per-transfer cost adjustment
  /// (edge, sender_instance, receiver_instance, seconds) -> seconds,
  /// applied after the noise model. Used by the placement-aware simulator
  /// to add routing-distance and link-sharing effects; must be a pure
  /// function of its arguments (order-independent).
  std::function<double(int, int, int, double)> transfer_adjustment;

  /// Optional fault schedule (fault/fault_plan.h), borrowed for the run.
  /// Crashed instances stop accepting new data sets (work already started
  /// completes) and their traffic reroutes to surviving siblings; slowdown
  /// and link events stretch compute and transfer durations inside their
  /// windows. Module/edge indices in the plan refer to the *mapping*'s
  /// modules and boundaries. Throws pipemap::Infeasible when every
  /// instance of a module has crashed.
  const FaultPlan* faults = nullptr;
};

/// Per-module activity totals: seconds spent in each phase, summed over
/// the module's instances and all data sets. Always populated by both
/// simulation engines (independent of any observability switch); the
/// basis for bottleneck attribution (sim/attribution.h).
struct ModuleActivity {
  double receive_s = 0.0;
  double compute_s = 0.0;
  double send_s = 0.0;

  double busy_s() const { return receive_s + compute_s + send_s; }
};

struct SimResult {
  /// Steady-state throughput, data sets per second.
  double throughput = 0.0;
  /// Completion time of the last data set.
  double makespan = 0.0;
  /// Mean time from a data set entering module 0 to leaving the last module.
  double mean_latency = 0.0;
  /// Busy fraction per module (averaged over its instances) during the
  /// measured window.
  std::vector<double> module_utilization;
  /// Per-phase busy-time totals per module.
  std::vector<ModuleActivity> module_activity;
  /// Present when SimOptions::faults supplied a non-empty plan.
  std::optional<FaultImpact> fault_impact;
  /// Present when SimOptions::collect_profile is set.
  std::optional<Profile> profile;
  /// Present when SimOptions::collect_trace is set.
  std::optional<ExecutionTrace> trace;
};

class PipelineSimulator {
 public:
  /// `chain` carries the ground-truth cost model.
  explicit PipelineSimulator(const TaskChain& chain);

  /// Executes `mapping` and measures it. Throws pipemap::InvalidArgument on
  /// a mapping that does not cover the chain or replicates a
  /// non-replicable task.
  SimResult Run(const Mapping& mapping, const SimOptions& options) const;

 private:
  const TaskChain* chain_;
};

}  // namespace pipemap
