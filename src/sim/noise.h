// Measurement-noise model for the pipeline simulator.
//
// The paper's predicted and measured throughputs differ by 0-12% (Table 2),
// attributed to "inaccuracies in our modeling of performance parameters,
// and second order effects like interference between communication inside
// tasks and communication between tasks". The simulator reproduces those
// error sources explicitly:
//   * a systematic per-phase bias (each task's execution and each edge's
//     communication deviates from its nominal cost function by a fixed,
//     seeded log-normal factor — standing in for model-form error),
//   * per-event jitter (run-to-run variation), and
//   * transfer contention (concurrent transfers slow one another —
//     the "interference" effect, applied by the simulator itself).
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace pipemap {

struct NoiseSpec {
  /// Stddev of the log of the per-phase systematic factor. 0 = exact model.
  double systematic_stddev = 0.0;
  /// Stddev of the log of the per-event jitter factor.
  double jitter_stddev = 0.0;
  /// Fractional slowdown per additional concurrent transfer.
  double contention_coeff = 0.0;
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) noise factors for a chain with `num_tasks` tasks.
class NoiseModel {
 public:
  NoiseModel(const NoiseSpec& spec, int num_tasks);

  /// Fixed bias of task `task`'s execution time.
  double ExecBias(int task) const { return exec_bias_[task]; }
  /// Fixed bias of edge `edge`'s internal redistribution time.
  double IComBias(int edge) const { return icom_bias_[edge]; }
  /// Fixed bias of edge `edge`'s external transfer time.
  double EComBias(int edge) const { return ecom_bias_[edge]; }

  /// Fresh multiplicative jitter factor (1.0 when jitter disabled).
  double Jitter();

  /// Multiplicative slowdown for a transfer that overlaps
  /// `concurrent_transfers - 1` other transfers at its start.
  double ContentionFactor(int concurrent_transfers) const;

 private:
  NoiseSpec spec_;
  Rng rng_;
  std::vector<double> exec_bias_;
  std::vector<double> icom_bias_;
  std::vector<double> ecom_bias_;
};

}  // namespace pipemap
