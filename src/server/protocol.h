// Wire protocol for pipemap_server: length-prefixed frames carrying a
// line-oriented request, answered with a length-prefixed JSON document.
//
// Framing: every message — request and response — is a 4-byte big-endian
// payload length followed by exactly that many payload bytes. A reader
// therefore never has to scan untrusted bytes for a terminator, and a
// content error in one request cannot desynchronize the stream: the next
// frame boundary is always known. Frames above the configured maximum
// are refused (and drained) without buffering them.
//
// Request payload grammar ("pipemap-server v1"):
//
//   pipemap-server v1
//   op <map|simulate|report|ping|stats|metrics>
//   [trace_id <hex>]          1-16 hex digits, nonzero: the client's end
//                             of request tracing. Echoed in the response,
//                             stamped on spans and the access-log line;
//                             absent = the server generates one at
//                             admission (support/trace_context.h)
//   [deadline_s <double>]     per-request wall-clock budget; 0/absent =
//                             no deadline (Deadline::HasBudget contract)
//   [procs <int>]             processor budget; 0 = whole machine
//   [algorithm <dp|greedy|auto|brute>]
//   [objective <throughput|latency>]
//   [floor <double>]          throughput floor for latency objective
//   [datasets <int>]          simulate/report; clamped server-side
//   [noise <double>]          simulate/report noise level
//   [seed <int>]
//   [threads <int>]           solver threads; servers default to 1 and
//                             parallelize across requests instead
//   [cache <0|1>]             consult the shared solution cache (default 1)
//   [section chain <nbytes>]  followed by exactly nbytes raw bytes + '\n'
//   [section machine <nbytes>]
//   [section mapping <nbytes>]
//   end
//
// Sections carry the existing io/serialize text formats verbatim and are
// byte-counted, so their content — untrusted — is never scanned for
// markers. Every numeric field goes through the checked parsers
// (support/parse.h); unknown keys, duplicate sections, truncated
// sections, and trailing bytes after `end` are all hard errors. The
// parser allocates at most the payload it was handed, which the server
// has already capped at max_frame_bytes.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pipemap::server {

/// A parsed request. String sections are raw untrusted text; the handler
/// layer runs them through the io/serialize parsers, which validate.
struct ServerRequest {
  std::string op;
  /// Client-supplied trace id (0 = none; the server generates one at
  /// admission). Canonical wire form is FormatTraceId's 16 hex digits.
  std::uint64_t trace_id = 0;
  /// Wall-clock budget in seconds; <= 0 means no deadline.
  double deadline_s = 0.0;
  int procs = 0;
  std::string algorithm = "auto";
  std::string objective = "throughput";
  double floor = 0.0;
  int datasets = 200;
  double noise = 0.0;
  int seed = 42;
  int threads = 1;
  bool use_cache = true;
  std::string chain_text;
  std::string machine_text;
  std::string mapping_text;
  bool has_chain = false;
  bool has_machine = false;
  bool has_mapping = false;
};

/// Parses one request payload. Throws pipemap::InvalidArgument with a
/// one-line reason on any grammar violation; the server turns that into
/// an error response rather than closing the connection.
ServerRequest ParseServerRequest(std::string_view payload);

/// Renders `request` in the grammar above (the client side of the
/// contract; ParseServerRequest(SerializeServerRequest(r)) round-trips).
std::string SerializeServerRequest(const ServerRequest& request);

/// Frame I/O over a connected socket. ReadFrame returns false on a clean
/// EOF at a frame boundary; mid-frame EOF and I/O errors throw
/// pipemap::Error. A frame longer than `max_frame_bytes` is read and
/// discarded, then reported by throwing FrameTooLarge — the stream stays
/// synchronized, so the caller may answer with an error and keep the
/// connection.
bool ReadFrame(int fd, std::size_t max_frame_bytes, std::string* payload);
void WriteFrame(int fd, std::string_view payload);

/// Thrown by ReadFrame for an oversized (but fully drained) frame.
class FrameTooLarge : public std::runtime_error {
 public:
  explicit FrameTooLarge(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by ReadFrame when a read times out on a socket armed with a
/// receive timeout (SO_RCVTIMEO). The server arms one per connection when
/// ServerConfig::idle_timeout_s is set, and treats this as "the peer
/// stalled": the connection slot is freed instead of being held hostage
/// by a slowloris-style client that drips or withholds bytes forever.
class IdleTimeout : public std::runtime_error {
 public:
  explicit IdleTimeout(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace pipemap::server
