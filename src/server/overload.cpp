#include "server/overload.h"

#include <algorithm>

#include "support/metrics.h"

namespace pipemap::server {

OverloadController::OverloadController(OverloadConfig config)
    : config_(config) {}

void OverloadController::ObserveBurnAt(Clock::time_point now, bool burning) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!saw_signal_ || burning != burning_) {
    // Signal flipped (or first observation): a new streak starts now.
    burning_ = burning;
    streak_start_ = now;
    saw_signal_ = true;
  }
  const double streak_s =
      std::chrono::duration<double>(now - streak_start_).count();
  if (!degraded_) {
    if (burning_ && config_.brownout_after_s >= 0.0 &&
        streak_s >= config_.brownout_after_s) {
      degraded_ = true;
      ++counters_.brownout_entries;
      PIPEMAP_COUNTER_ADD("server.overload.brownout_entries", 1);
    }
  } else {
    if (!burning_ && streak_s >= config_.recover_after_s) {
      degraded_ = false;
      ++counters_.brownout_recoveries;
      PIPEMAP_COUNTER_ADD("server.overload.brownout_recoveries", 1);
    }
  }
  PIPEMAP_GAUGE_SET("server.overload.degraded", degraded_ ? 1.0 : 0.0);
}

bool OverloadController::ShouldShed(std::size_t queue_depth,
                                    std::size_t queue_capacity,
                                    double* retry_after_ms) {
  if (!config_.enabled) return false;
  bool shed = false;
  double hint_ms = config_.retry_after_base_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool depth_signal =
        config_.shed_watermark < 1.0 &&
        static_cast<double>(queue_depth) >=
            config_.shed_watermark * static_cast<double>(queue_capacity);
    shed = burning_ || depth_signal;
    counters_.shedding = shed;
    if (shed) {
      ++counters_.shed_total;
      // Scale the hint with how deep past the watermark the queue is: a
      // client told "come back in 100ms" when the queue is twice the
      // watermark would just shed again on arrival.
      if (queue_capacity > 0) {
        const double fill = static_cast<double>(queue_depth) /
                            static_cast<double>(queue_capacity);
        hint_ms *= std::max(1.0, 1.0 + 4.0 * fill);
      }
      if (degraded_) hint_ms *= 2.0;
    }
  }
  if (shed) {
    PIPEMAP_COUNTER_ADD("server.shed", 1);
    if (retry_after_ms != nullptr) {
      *retry_after_ms = std::min(hint_ms, 10'000.0);
    }
  }
  return shed;
}

bool OverloadController::degraded() const {
  if (!config_.enabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

OverloadState OverloadController::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  OverloadState out = counters_;
  out.burning = burning_;
  out.degraded = degraded_;
  return out;
}

}  // namespace pipemap::server
