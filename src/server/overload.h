// Overload control for pipemap_server: adaptive load shedding and
// brownout (degraded-mode) serving, driven by the SLO monitor's burn
// state and the admission queue depth.
//
// The problem: under sustained overload a bounded queue can only fill
// up and reject, and every admitted request rots behind a queue of
// doomed work — p99 grows with queue depth while goodput stays flat.
// The graceful middle ground is to *shed early* and *serve cheaper*:
//
//   * shedding — while the SLO window is burning OR the queue depth is
//     at/above a watermark (a fraction of capacity), new requests are
//     refused immediately with an `overloaded` error carrying a
//     `retry_after_ms` hint, instead of being admitted to rot. Shedding
//     is instantaneous: it starts the moment the signal is present and
//     stops the moment it clears.
//   * brownout — when the burn signal has been continuously present for
//     `brownout_after_s`, the worker pool downgrades solve-shaped ops to
//     the greedy-only solver under a short deadline
//     (`degraded_deadline_s`), flagging responses `degraded: true`.
//     Brownout recovers via hysteresis: only after the burn signal has
//     been continuously absent for `recover_after_s` does serving return
//     to the full portfolio — a flapping signal cannot flap the mode.
//
// State machine (DESIGN.md §12):
//
//        burn sustained >= brownout_after_s
//   normal ───────────────────────────────► brownout
//      ▲                                       │
//      └───────────────────────────────────────┘
//        burn clear sustained >= recover_after_s
//
// The controller is pure bookkeeping — it never samples a clock or the
// SLO monitor itself. The server feeds it (ObserveBurn at a bounded
// poll cadence, ShouldShed per admission), and every method has an
// explicit-time variant so tests drive the whole machine
// deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace pipemap::server {

struct OverloadConfig {
  /// Queue-depth shed watermark as a fraction of queue capacity; a depth
  /// at/above `watermark * capacity` sheds. >= 1.0 disables depth-based
  /// shedding (the queue-full rejection still applies).
  double shed_watermark = 0.75;
  /// Continuous burn before brownout engages. < 0 disables brownout.
  double brownout_after_s = 3.0;
  /// Continuous non-burn before brownout disengages.
  double recover_after_s = 5.0;
  /// Solver deadline for degraded solves.
  double degraded_deadline_s = 0.05;
  /// Base of the retry_after_ms hint on shed responses.
  double retry_after_base_ms = 100.0;
  /// Master switch: false restores the pre-overload-layer behavior
  /// (admit until full, never degrade).
  bool enabled = true;
};

struct OverloadState {
  bool burning = false;    ///< last observed burn signal
  bool shedding = false;   ///< last shed decision's signal state
  bool degraded = false;   ///< brownout active
  std::uint64_t shed_total = 0;          ///< requests refused by shedding
  std::uint64_t brownout_entries = 0;    ///< normal → brownout transitions
  std::uint64_t brownout_recoveries = 0; ///< brownout → normal transitions
};

class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit OverloadController(OverloadConfig config = {});

  /// Feeds the burn signal (typically SloState::burning). The server
  /// polls the SLO monitor at a bounded cadence and forwards it here;
  /// the controller advances the brownout state machine on every call.
  void ObserveBurn(bool burning) { ObserveBurnAt(Clock::now(), burning); }
  void ObserveBurnAt(Clock::time_point now, bool burning);

  /// One admission decision. Returns true when the request must be shed;
  /// `retry_after_ms`, when non-null, receives the backpressure hint for
  /// the error response. Counts each shed.
  bool ShouldShed(std::size_t queue_depth, std::size_t queue_capacity,
                  double* retry_after_ms = nullptr);

  /// Brownout active: solve-shaped ops downgrade to greedy-only under
  /// degraded_deadline_s.
  bool degraded() const;

  OverloadState state() const;
  const OverloadConfig& config() const { return config_; }

 private:
  OverloadConfig config_;
  mutable std::mutex mu_;
  bool burning_ = false;
  bool degraded_ = false;
  bool saw_signal_ = false;  ///< ObserveBurn has been called at least once
  /// When the current burn (or clear) streak started.
  Clock::time_point streak_start_{};
  OverloadState counters_;
};

}  // namespace pipemap::server
