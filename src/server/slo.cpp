#include "server/slo.h"

#include <algorithm>
#include <cmath>

namespace pipemap::server {

SloMonitor::SloMonitor(SloConfig config)
    : config_(config), epoch_(Clock::now()) {
  config_.window_s = std::clamp(config_.window_s, 1, kMaxWindowS);
  config_.p99_latency_ms = std::max(0.0, config_.p99_latency_ms);
  config_.max_error_rate = std::clamp(config_.max_error_rate, 0.0, 1.0);
}

int SloMonitor::BucketOf(double latency_ms) {
  if (!(latency_ms > 0.0)) return 0;
  int exp = 0;
  std::frexp(latency_ms, &exp);  // latency_ms = m * 2^exp, m in [0.5, 1)
  return std::clamp(exp + kBias, 0, kLatencyBuckets - 1);
}

double SloMonitor::BucketUpperEdgeMs(int bucket) {
  return std::ldexp(1.0, bucket - kBias);
}

std::int64_t SloMonitor::SecondOf(Clock::time_point t) const {
  return std::chrono::duration_cast<std::chrono::seconds>(t - epoch_)
      .count();
}

void SloMonitor::RecordAt(Clock::time_point now, double latency_ms,
                          bool error) {
  const std::int64_t second = SecondOf(now);
  if (second < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = ring_[static_cast<std::size_t>(second % kMaxWindowS)];
  if (bucket.second != second) {
    // The slot last served a second at least kMaxWindowS ago; recycle it.
    bucket = Bucket{};
    bucket.second = second;
  }
  ++bucket.count;
  if (error) ++bucket.errors;
  ++bucket.latency[static_cast<std::size_t>(BucketOf(latency_ms))];
}

SloState SloMonitor::SnapshotAt(Clock::time_point now) const {
  SloState state;
  state.window_s = config_.window_s;
  state.p99_objective_ms = config_.p99_latency_ms;
  state.error_rate_objective = config_.max_error_rate;

  const std::int64_t newest = SecondOf(now);
  const std::int64_t oldest = newest - config_.window_s + 1;
  std::array<std::uint64_t, kLatencyBuckets> merged{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Bucket& bucket : ring_) {
      if (bucket.second < oldest || bucket.second > newest) continue;
      state.requests += bucket.count;
      state.errors += bucket.errors;
      for (int b = 0; b < kLatencyBuckets; ++b) {
        merged[static_cast<std::size_t>(b)] +=
            bucket.latency[static_cast<std::size_t>(b)];
      }
    }
  }
  if (state.requests > 0) {
    state.error_rate = static_cast<double>(state.errors) /
                       static_cast<double>(state.requests);
    const auto quantile = [&](double q) {
      const auto rank = static_cast<std::uint64_t>(
          q * static_cast<double>(state.requests - 1));
      std::uint64_t seen = 0;
      for (int b = 0; b < kLatencyBuckets; ++b) {
        seen += merged[static_cast<std::size_t>(b)];
        if (seen > rank) return BucketUpperEdgeMs(b);
      }
      return BucketUpperEdgeMs(kLatencyBuckets - 1);
    };
    state.p50_ms = quantile(0.50);
    state.p99_ms = quantile(0.99);
  }
  if (config_.p99_latency_ms > 0.0) {
    state.p99_burn_ratio = state.p99_ms / config_.p99_latency_ms;
    state.p99_breach = state.p99_burn_ratio > 1.0;
  }
  if (config_.max_error_rate > 0.0) {
    state.error_burn_ratio = state.error_rate / config_.max_error_rate;
    state.error_breach = state.error_burn_ratio > 1.0;
  }
  state.burning = state.p99_breach || state.error_breach;
  return state;
}

}  // namespace pipemap::server
