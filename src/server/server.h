// pipemap_server: mapping-as-a-service on top of MappingEngine.
//
// The server turns the in-process engine into a long-running daemon: a
// TCP listener accepts concurrent connections speaking the framed
// protocol in server/protocol.h, a bounded admission queue decouples
// connection handling from solving, and a fixed pool of solver workers
// drains the queue into one shared MappingEngine — so every request in
// the process sees the same solution cache and warm pool.
//
// Threading model:
//   * one accept thread; one lightweight thread per connection (reads
//     frames, parses, enqueues, writes responses). Connection threads
//     never solve, so the server holds >= 64 open connections with the
//     solver parallelism fixed by `num_workers`;
//   * `num_workers` solver threads pop jobs from the admission queue.
//     Requests default to threads=1 inside the solver (ThreadPool::
//     Shared() serializes parallel regions, so parallelism across
//     requests beats parallelism within one);
//   * admission is bounded: a full queue rejects immediately with a
//     clean `rejected` error response instead of building backlog.
//
// Deadlines: a request's `deadline_s` is anchored at admission, so time
// spent waiting in the queue counts against it. A job whose deadline has
// already expired when a worker picks it up is solved with a vanishing
// budget — the engine returns its greedy incumbent flagged timed_out
// rather than hanging or silently running long.
//
// Shutdown (Drain): stop accepting, reject new frames with a `draining`
// error, let workers finish every admitted job (each bounded by its own
// deadline), then wake blocked readers and join all threads. Drain is
// what the daemon runs on SIGTERM; it is also safe to call twice.
//
// Every response — success or failure — is one JSON object; hostile
// bytes in request sections pass through JsonWriter's sanitizing escaper,
// so the server never emits a malformed document.
//
// Observability (DESIGN.md §9): every request carries a TraceContext —
// client-supplied `trace_id` or one generated at admission — that is
// echoed in the response, stamped on correlated Tracer spans
// (server.request / server.queue_wait / server.solve, arg = trace id,
// joining the engine.map span of the same solve), written to the
// structured access log, and fed to the rolling-window SLO monitor. The
// `metrics` op serves the whole registry as Prometheus text exposition.
// All of it compiles to a no-op under PIPEMAP_NO_OBSERVABILITY except
// the trace-id echo, which is protocol surface, not instrumentation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/overload.h"
#include "server/protocol.h"
#include "server/slo.h"
#include "support/access_log.h"
#include "support/circuit_breaker.h"

namespace pipemap {
class MappingEngine;
struct MapRequest;
}  // namespace pipemap

namespace pipemap::server {

struct ServerConfig {
  /// Bind address. The default keeps the daemon loopback-only; the tests
  /// and the bench talk to it on localhost.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result back via port().
  int port = 0;
  /// Solver worker threads draining the admission queue.
  int num_workers = 4;
  /// Admission queue bound; a full queue rejects, never blocks.
  std::size_t queue_capacity = 64;
  /// Frames above this are drained and refused (see ReadFrame).
  std::size_t max_frame_bytes = 4u << 20;
  /// Engine to solve on; nullptr uses MappingEngine::Shared().
  MappingEngine* engine = nullptr;

  /// When non-empty, the engine's solution cache persists to this
  /// directory (engine/cache_persist.h): solved fingerprints spill
  /// write-behind, misses probe disk lazily, and a restarted daemon
  /// pointed at the same directory serves yesterday's traffic as cache
  /// hits. Drain flushes pending spills before reporting done.
  std::string cache_dir;
  /// Disk budget for the persistent tier; 0 = unbounded. Crossing it
  /// evicts oldest entries (engine/cache_persist.h).
  std::uint64_t cache_dir_max_bytes = 0;

  /// Overload resilience (server/overload.h, DESIGN.md §12): adaptive
  /// admission shedding and brownout serving, driven by the SLO burn
  /// state (polled at a bounded cadence) and the admission queue depth.
  /// The defaults keep the layer armed but inert until the SLO monitor
  /// has objectives or the queue actually fills.
  bool overload_enabled = true;
  double shed_watermark = 0.75;
  double brownout_after_s = 3.0;
  double recover_after_s = 5.0;
  double degraded_deadline_s = 0.05;

  /// Per-connection read timeout in seconds; a peer that stalls mid-frame
  /// (slowloris) or goes silent longer than this has its connection torn
  /// down and the slot freed (counted in idle_timeouts). 0 disables.
  double idle_timeout_s = 0.0;

  /// Per-op solver circuit breaker: this many consecutive *internal*
  /// handler failures on one solve op (map / simulate / report) open the
  /// breaker, and further requests for that op fail fast with a
  /// `circuit_open` error until a cooldown probe heals it. <= 0 disables.
  int solver_breaker_failures = 8;
  double solver_breaker_cooldown_s = 1.0;

  /// Structured access log: one JSONL line per request (trace_id, op,
  /// bytes in/out, queue wait, solve time, cache/solver/deadline
  /// provenance, status), written asynchronously (support/access_log.h —
  /// a full log queue drops lines, never blocks requests). Empty path
  /// disables it; the whole feature compiles out under
  /// PIPEMAP_NO_OBSERVABILITY.
  std::string access_log_path;
  std::size_t access_log_max_bytes = 64u << 20;
  std::size_t access_log_queue = 4096;

  /// SLO objectives tracked by the rolling-window monitor
  /// (server/slo.h): p99 served latency in ms and error rate in [0, 1];
  /// 0 leaves an objective unconfigured (the window is still tracked).
  double slo_p99_ms = 0.0;
  double slo_max_error_rate = 0.0;
  int slo_window_s = 60;
};

/// Monotone counters mirrored into MetricsRegistry ("server.*"). Kept as
/// plain atomics too so the `stats` op works with metrics collection off.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;      ///< requests admitted to the queue
  std::uint64_t rejected = 0;      ///< queue-full rejections
  std::uint64_t completed = 0;     ///< responses produced by workers
  std::uint64_t timed_out = 0;     ///< responses flagged deadline-expired
  std::uint64_t parse_errors = 0;  ///< malformed frames answered with errors
  std::uint64_t drained = 0;       ///< frames refused because of Drain
  std::uint64_t shed = 0;          ///< requests refused by overload shedding
  std::uint64_t degraded = 0;      ///< solves served in brownout mode
  std::uint64_t idle_timeouts = 0; ///< connections reaped by the idle timer
  std::uint64_t breaker_fast_fails = 0;  ///< circuit_open fast-fail errors
};

class PipemapServer {
 public:
  explicit PipemapServer(ServerConfig config = {});
  ~PipemapServer();

  PipemapServer(const PipemapServer&) = delete;
  PipemapServer& operator=(const PipemapServer&) = delete;

  /// Binds, listens, and spawns the accept thread and worker pool.
  /// Throws pipemap::Error when the address cannot be bound.
  void Start();

  /// The bound port (resolves config.port == 0), valid after Start().
  int port() const { return port_; }

  /// Graceful shutdown: finish admitted work, refuse new work, join all
  /// threads. Blocks until the server is fully stopped. Idempotent.
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerCounters counters() const;

  /// The rolling SLO window (burn state also surfaced by `stats` and the
  /// `metrics` op).
  SloState slo() const { return slo_.Snapshot(); }

  /// Overload layer state: shed/brownout counters and the current mode
  /// (also surfaced by the `stats` op).
  OverloadState overload_state() const { return overload_.state(); }

  /// Access-log activity; all-zero when no access log is configured.
  AccessLogger::Stats access_log_stats() const;

  /// Blocks until every access-log line enqueued so far is on disk.
  /// No-op without an access log. The drain path and the tests use it.
  void FlushAccessLog();

 private:
  struct Job;
  struct Connection;

  /// What one request did, for the access-log line, the SLO monitor, and
  /// the server.* metrics — filled by the handler that produced the
  /// response JSON.
  struct RequestOutcome {
    std::string status = "ok";  // "ok" or the error code of the response
    std::string solver;
    bool cache_hit = false;
    /// "memory" / "disk" on a cache hit, "" otherwise.
    std::string cache_tier;
    /// Served by a concurrent identical solve (single-flight dedup).
    bool shared_solve = false;
    bool timed_out = false;
    /// Served in brownout mode: greedy-only solver under the degraded
    /// deadline. Set by the worker before dispatch; echoed in the
    /// response JSON and the access-log line.
    bool degraded = false;
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  void WorkerLoop();

  /// Runs one parsed request to a JSON response string. Never throws:
  /// every failure becomes an {"ok": false, ...} document (and
  /// `outcome->status` its code).
  std::string HandleRequest(const ServerRequest& request,
                            double remaining_budget_s,
                            RequestOutcome* outcome);
  /// HandleRequest's dispatch body; HandleRequest wraps it with the
  /// per-op solver circuit breaker (fail fast with `circuit_open` while
  /// open, feed it internal-failure outcomes while closed).
  std::string DispatchRequest(const ServerRequest& request,
                              double remaining_budget_s,
                              RequestOutcome* outcome);
  std::string HandleMap(const ServerRequest& request, double budget_s,
                        RequestOutcome* outcome);
  std::string HandleSimulate(const ServerRequest& request);
  std::string HandleReport(const ServerRequest& request, double budget_s,
                           RequestOutcome* outcome);
  std::string HandleStats(const ServerRequest& request);
  std::string HandleMetrics(const ServerRequest& request);

  /// Publishes the SLO window as slo.* gauges (snapshot-time, not
  /// per-request) so the `metrics` exposition carries burn state.
  void PublishSloGauges();

  /// One finished request: emits the access-log line, feeds the SLO
  /// monitor, and records the per-phase histograms/spans. `received_ns`
  /// is 0 for requests that never reached the tracer timebase.
  void FinishRequest(std::uint64_t trace_id, const std::string& op,
                     const RequestOutcome& outcome, std::size_t bytes_in,
                     std::size_t bytes_out, double queue_wait_s,
                     double solve_s, double total_s);

  void ReapFinishedConnections();

  /// Feeds the SLO burn signal into the overload controller, throttled to
  /// ~10 Hz so neither admission nor workers pay a window snapshot per
  /// request.
  void PollOverload();

  /// The solve-shaped op's breaker, or nullptr for ops that never touch
  /// the solver (ping / stats / metrics).
  CircuitBreaker* SolverBreaker(const std::string& op);

  /// Downgrades an engine request to brownout fidelity: greedy-only
  /// portfolio (throughput objective) and the degraded deadline. Counts
  /// the degraded solve.
  void ApplyBrownout(MapRequest* mr);

  ServerConfig config_;
  MappingEngine* engine_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Set under queue_mu_ by Drain: workers finish the queue, then exit.
  bool stop_workers_ = false;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;

  SloMonitor slo_;
  /// Null when no access log is configured (or under
  /// PIPEMAP_NO_OBSERVABILITY).
  std::unique_ptr<AccessLogger> access_log_;

  OverloadController overload_;
  /// steady_clock nanos of the last burn-signal poll (0 = never).
  std::atomic<std::int64_t> last_burn_poll_ns_{0};
  /// Per-op solver breakers (consecutive internal failures fail fast).
  CircuitBreaker map_breaker_;
  CircuitBreaker simulate_breaker_;
  CircuitBreaker report_breaker_;
};

}  // namespace pipemap::server
