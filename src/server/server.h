// pipemap_server: mapping-as-a-service on top of MappingEngine.
//
// The server turns the in-process engine into a long-running daemon: a
// TCP listener accepts concurrent connections speaking the framed
// protocol in server/protocol.h, a bounded admission queue decouples
// connection handling from solving, and a fixed pool of solver workers
// drains the queue into one shared MappingEngine — so every request in
// the process sees the same solution cache and warm pool.
//
// Threading model:
//   * one accept thread; one lightweight thread per connection (reads
//     frames, parses, enqueues, writes responses). Connection threads
//     never solve, so the server holds >= 64 open connections with the
//     solver parallelism fixed by `num_workers`;
//   * `num_workers` solver threads pop jobs from the admission queue.
//     Requests default to threads=1 inside the solver (ThreadPool::
//     Shared() serializes parallel regions, so parallelism across
//     requests beats parallelism within one);
//   * admission is bounded: a full queue rejects immediately with a
//     clean `rejected` error response instead of building backlog.
//
// Deadlines: a request's `deadline_s` is anchored at admission, so time
// spent waiting in the queue counts against it. A job whose deadline has
// already expired when a worker picks it up is solved with a vanishing
// budget — the engine returns its greedy incumbent flagged timed_out
// rather than hanging or silently running long.
//
// Shutdown (Drain): stop accepting, reject new frames with a `draining`
// error, let workers finish every admitted job (each bounded by its own
// deadline), then wake blocked readers and join all threads. Drain is
// what the daemon runs on SIGTERM; it is also safe to call twice.
//
// Every response — success or failure — is one JSON object; hostile
// bytes in request sections pass through JsonWriter's sanitizing escaper,
// so the server never emits a malformed document.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"

namespace pipemap {
class MappingEngine;
}  // namespace pipemap

namespace pipemap::server {

struct ServerConfig {
  /// Bind address. The default keeps the daemon loopback-only; the tests
  /// and the bench talk to it on localhost.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result back via port().
  int port = 0;
  /// Solver worker threads draining the admission queue.
  int num_workers = 4;
  /// Admission queue bound; a full queue rejects, never blocks.
  std::size_t queue_capacity = 64;
  /// Frames above this are drained and refused (see ReadFrame).
  std::size_t max_frame_bytes = 4u << 20;
  /// Engine to solve on; nullptr uses MappingEngine::Shared().
  MappingEngine* engine = nullptr;
};

/// Monotone counters mirrored into MetricsRegistry ("server.*"). Kept as
/// plain atomics too so the `stats` op works with metrics collection off.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t accepted = 0;      ///< requests admitted to the queue
  std::uint64_t rejected = 0;      ///< queue-full rejections
  std::uint64_t completed = 0;     ///< responses produced by workers
  std::uint64_t timed_out = 0;     ///< responses flagged deadline-expired
  std::uint64_t parse_errors = 0;  ///< malformed frames answered with errors
  std::uint64_t drained = 0;       ///< frames refused because of Drain
};

class PipemapServer {
 public:
  explicit PipemapServer(ServerConfig config = {});
  ~PipemapServer();

  PipemapServer(const PipemapServer&) = delete;
  PipemapServer& operator=(const PipemapServer&) = delete;

  /// Binds, listens, and spawns the accept thread and worker pool.
  /// Throws pipemap::Error when the address cannot be bound.
  void Start();

  /// The bound port (resolves config.port == 0), valid after Start().
  int port() const { return port_; }

  /// Graceful shutdown: finish admitted work, refuse new work, join all
  /// threads. Blocks until the server is fully stopped. Idempotent.
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerCounters counters() const;

 private:
  struct Job;
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  void WorkerLoop();

  /// Runs one parsed request to a JSON response string. Never throws:
  /// every failure becomes an {"ok": false, ...} document.
  std::string HandleRequest(const ServerRequest& request,
                            double remaining_budget_s);
  std::string HandleMap(const ServerRequest& request, double budget_s);
  std::string HandleSimulate(const ServerRequest& request);
  std::string HandleReport(const ServerRequest& request, double budget_s);
  std::string HandleStats();

  void ReapFinishedConnections();

  ServerConfig config_;
  MappingEngine* engine_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Set under queue_mu_ by Drain: workers finish the queue, then exit.
  bool stop_workers_ = false;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;
};

}  // namespace pipemap::server
