#include "server/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>

#include "support/error.h"
#include "support/parse.h"
#include "support/trace_context.h"

namespace pipemap::server {
namespace {

/// Line cursor over the payload. Sections are consumed by byte count, so
/// only the header lines are ever scanned.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }

  /// The next header line, without its terminating '\n'. A final line
  /// without a newline is accepted (it can only be `end`).
  std::string_view NextLine() {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      const std::string_view line = text.substr(pos);
      pos = text.size();
      return line;
    }
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  }

  /// Consumes exactly `n` raw bytes plus the mandatory trailing newline.
  std::string_view TakeRaw(std::size_t n) {
    if (text.size() - pos < n) {
      throw InvalidArgument("server request: truncated section body");
    }
    const std::string_view raw = text.substr(pos, n);
    pos += n;
    if (pos >= text.size() || text[pos] != '\n') {
      throw InvalidArgument(
          "server request: section body must end with a newline");
    }
    ++pos;
    return raw;
  }
};

int CheckedIntField(std::string_view key, std::string_view value) {
  const std::optional<int> v = TryParseInt(value);
  if (!v) {
    throw InvalidArgument("server request: invalid integer for '" +
                          std::string(key) + "': '" + std::string(value) +
                          "'");
  }
  return *v;
}

double CheckedDoubleField(std::string_view key, std::string_view value) {
  const std::optional<double> v = TryParseDouble(value);
  if (!v) {
    throw InvalidArgument("server request: invalid number for '" +
                          std::string(key) + "': '" + std::string(value) +
                          "'");
  }
  return *v;
}

void ReadExact(int fd, void* buffer, std::size_t n, bool* clean_eof) {
  char* out = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, out + done, n - done);
    if (got == 0) {
      if (clean_eof != nullptr && done == 0) {
        *clean_eof = true;
        return;
      }
      throw Error("connection closed mid-frame");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A socket armed with SO_RCVTIMEO ran out of patience: the peer
        // is stalling (possibly mid-frame). Distinct type so the server
        // can count it and free the slot.
        throw IdleTimeout("read timed out waiting for the peer");
      }
      throw Error(std::string("read failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
}

}  // namespace

ServerRequest ParseServerRequest(std::string_view payload) {
  Cursor cursor{payload};
  if (cursor.NextLine() != "pipemap-server v1") {
    throw InvalidArgument("server request: missing 'pipemap-server v1'");
  }
  ServerRequest request;
  bool saw_op = false;
  bool saw_end = false;
  while (!cursor.AtEnd()) {
    const std::string_view line = cursor.NextLine();
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      throw InvalidArgument("server request: malformed line '" +
                            std::string(line) + "'");
    }
    const std::string_view key = line.substr(0, space);
    const std::string_view value = line.substr(space + 1);
    if (key == "op") {
      request.op = std::string(value);
      saw_op = true;
    } else if (key == "trace_id") {
      const std::optional<std::uint64_t> id = ParseTraceId(value);
      if (!id) {
        throw InvalidArgument(
            "server request: 'trace_id' must be 1-16 nonzero hex digits, "
            "got '" + std::string(value) + "'");
      }
      request.trace_id = *id;
    } else if (key == "deadline_s") {
      request.deadline_s = CheckedDoubleField(key, value);
    } else if (key == "procs") {
      request.procs = CheckedIntField(key, value);
    } else if (key == "algorithm") {
      request.algorithm = std::string(value);
    } else if (key == "objective") {
      request.objective = std::string(value);
    } else if (key == "floor") {
      request.floor = CheckedDoubleField(key, value);
    } else if (key == "datasets") {
      request.datasets = CheckedIntField(key, value);
    } else if (key == "noise") {
      request.noise = CheckedDoubleField(key, value);
    } else if (key == "seed") {
      request.seed = CheckedIntField(key, value);
    } else if (key == "threads") {
      request.threads = CheckedIntField(key, value);
    } else if (key == "cache") {
      const int v = CheckedIntField(key, value);
      if (v != 0 && v != 1) {
        throw InvalidArgument("server request: 'cache' must be 0 or 1");
      }
      request.use_cache = v == 1;
    } else if (key == "section") {
      const std::size_t name_end = value.find(' ');
      if (name_end == std::string_view::npos) {
        throw InvalidArgument("server request: section needs a byte count");
      }
      const std::string_view name = value.substr(0, name_end);
      const int nbytes = CheckedIntField("section", value.substr(name_end + 1));
      if (nbytes < 0) {
        throw InvalidArgument("server request: negative section length");
      }
      const std::string_view raw =
          cursor.TakeRaw(static_cast<std::size_t>(nbytes));
      if (name == "chain") {
        if (request.has_chain) {
          throw InvalidArgument("server request: duplicate chain section");
        }
        request.chain_text = std::string(raw);
        request.has_chain = true;
      } else if (name == "machine") {
        if (request.has_machine) {
          throw InvalidArgument("server request: duplicate machine section");
        }
        request.machine_text = std::string(raw);
        request.has_machine = true;
      } else if (name == "mapping") {
        if (request.has_mapping) {
          throw InvalidArgument("server request: duplicate mapping section");
        }
        request.mapping_text = std::string(raw);
        request.has_mapping = true;
      } else {
        throw InvalidArgument("server request: unknown section '" +
                              std::string(name) + "'");
      }
    } else {
      throw InvalidArgument("server request: unknown key '" +
                            std::string(key) + "'");
    }
  }
  if (!saw_end) {
    throw InvalidArgument("server request: missing 'end'");
  }
  if (!cursor.AtEnd()) {
    throw InvalidArgument("server request: trailing bytes after 'end'");
  }
  if (!saw_op) {
    throw InvalidArgument("server request: missing 'op'");
  }
  return request;
}

std::string SerializeServerRequest(const ServerRequest& request) {
  std::string out = "pipemap-server v1\n";
  out += "op " + request.op + "\n";
  if (request.trace_id != 0) {
    out += "trace_id " + FormatTraceId(request.trace_id) + "\n";
  }
  const auto number = [](double v) {
    // Shortest round-trip-safe form; matches what TryParseDouble accepts.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  if (request.deadline_s != 0.0) {
    out += "deadline_s " + number(request.deadline_s) + "\n";
  }
  if (request.procs != 0) out += "procs " + std::to_string(request.procs) + "\n";
  out += "algorithm " + request.algorithm + "\n";
  out += "objective " + request.objective + "\n";
  if (request.floor != 0.0) out += "floor " + number(request.floor) + "\n";
  out += "datasets " + std::to_string(request.datasets) + "\n";
  if (request.noise != 0.0) out += "noise " + number(request.noise) + "\n";
  out += "seed " + std::to_string(request.seed) + "\n";
  out += "threads " + std::to_string(request.threads) + "\n";
  out += std::string("cache ") + (request.use_cache ? "1" : "0") + "\n";
  const auto section = [&out](const char* name, const std::string& body) {
    out += "section ";
    out += name;
    out += ' ';
    out += std::to_string(body.size());
    out += '\n';
    out += body;
    out += '\n';
  };
  if (request.has_chain) section("chain", request.chain_text);
  if (request.has_machine) section("machine", request.machine_text);
  if (request.has_mapping) section("mapping", request.mapping_text);
  out += "end\n";
  return out;
}

bool ReadFrame(int fd, std::size_t max_frame_bytes, std::string* payload) {
  unsigned char header[4];
  bool clean_eof = false;
  ReadExact(fd, header, sizeof(header), &clean_eof);
  if (clean_eof) return false;
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > max_frame_bytes) {
    // Drain in bounded chunks so the stream stays frame-aligned without
    // ever buffering the oversized payload.
    char sink[4096];
    std::size_t remaining = length;
    while (remaining > 0) {
      const std::size_t chunk = std::min(remaining, sizeof(sink));
      ReadExact(fd, sink, chunk, nullptr);
      remaining -= chunk;
    }
    throw FrameTooLarge("frame of " + std::to_string(length) +
                        " bytes exceeds the limit of " +
                        std::to_string(max_frame_bytes));
  }
  payload->resize(length);
  if (length > 0) ReadExact(fd, payload->data(), length, nullptr);
  return true;
}

void WriteFrame(int fd, std::string_view payload) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>((length >> 24) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>(length & 0xFF)};
  std::string buffer(reinterpret_cast<char*>(header), sizeof(header));
  buffer.append(payload);
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t wrote = ::write(fd, buffer.data() + done,
                                  buffer.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(wrote);
  }
}

}  // namespace pipemap::server
