// Rolling-window SLO tracking for pipemap_server: observed p99 latency
// and error rate over the last `window_s` seconds, compared against
// configured objectives.
//
// The monitor keeps one bucket per second in a fixed ring (count, error
// count, and a power-of-two latency histogram), so Record is O(1), the
// memory is a few KB regardless of traffic, and a snapshot merges at
// most `window_s` buckets. Latency percentiles are bucket-estimated the
// same way support/metrics.h estimates them (upper-edge of the bucket
// holding the rank), so served-latency p99 here and in the registry
// agree on methodology.
//
// Burn state: an objective of 0 means "not configured" — the monitor
// still reports the observed window, it just never flags a breach. With
// an objective set, `burn_ratio` is observed/objective (1.0 = exactly at
// objective) and `breach` is ratio > 1. `burning` is the OR of the two
// breaches; the server surfaces it in `stats`, in `slo.*` gauges behind
// the `metrics` op, and in the daemon's final drain report.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace pipemap::server {

struct SloConfig {
  /// p99 served-latency objective in milliseconds; 0 = not configured.
  double p99_latency_ms = 0.0;
  /// Error-rate objective in [0, 1]; 0 = not configured.
  double max_error_rate = 0.0;
  /// Rolling window length in seconds (clamped to [1, kMaxWindowS]).
  int window_s = 60;
};

struct SloState {
  int window_s = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double error_rate = 0.0;
  /// Bucket-estimated latency percentiles over the window, ms.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p99_objective_ms = 0.0;
  double error_rate_objective = 0.0;
  /// observed / objective; 0 when the objective is not configured.
  double p99_burn_ratio = 0.0;
  double error_burn_ratio = 0.0;
  bool p99_breach = false;
  bool error_breach = false;
  bool burning = false;
};

class SloMonitor {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr int kMaxWindowS = 600;

  explicit SloMonitor(SloConfig config = {});

  /// Accounts one finished request. `error` means the response carried
  /// "ok": false (any code) — protocol errors burn the error budget the
  /// same as internal ones.
  void Record(double latency_ms, bool error) {
    RecordAt(Clock::now(), latency_ms, error);
  }
  SloState Snapshot() const { return SnapshotAt(Clock::now()); }

  /// Explicit-time variants: the deterministic seam the unit tests use.
  void RecordAt(Clock::time_point now, double latency_ms, bool error);
  SloState SnapshotAt(Clock::time_point now) const;

  const SloConfig& config() const { return config_; }

 private:
  /// Power-of-two latency buckets over milliseconds: bucket b holds
  /// samples in (2^(b-1-kBias), 2^(b-kBias)] ms; bucket 0 absorbs
  /// everything smaller. With kBias 6, bucket 0 is <= ~0.016 ms and the
  /// top bucket is ~2^41 ms — far beyond any real request.
  static constexpr int kLatencyBuckets = 48;
  static constexpr int kBias = 6;
  static int BucketOf(double latency_ms);
  static double BucketUpperEdgeMs(int bucket);

  struct Bucket {
    std::int64_t second = -1;  // epoch second this bucket represents
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::array<std::uint32_t, kLatencyBuckets> latency{};
  };

  std::int64_t SecondOf(Clock::time_point t) const;

  SloConfig config_;
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::array<Bucket, kMaxWindowS> ring_;
};

}  // namespace pipemap::server
