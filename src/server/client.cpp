#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.h"

namespace pipemap::server {

ServerClient::ServerClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument("invalid server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("connect " + host + ":" + std::to_string(port) +
                " failed: " + reason);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ServerClient::~ServerClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServerClient::ServerClient(ServerClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

std::string ServerClient::Call(const ServerRequest& request) {
  return CallRaw(SerializeServerRequest(request));
}

std::string ServerClient::CallRaw(std::string_view payload) {
  if (fd_ < 0) throw Error("client connection is closed");
  WriteFrame(fd_, payload);
  std::string response;
  // The server answers every frame; EOF here means it died or drained
  // without replying, which callers must see as an error, not "".
  if (!ReadFrame(fd_, 64u << 20, &response)) {
    throw Error("server closed the connection without a response");
  }
  return response;
}

void ServerClient::Close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace pipemap::server
