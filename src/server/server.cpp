#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "core/evaluator.h"
#include "engine/mapping_engine.h"
#include "io/serialize.h"
#include "machine/feasible.h"
#include "sim/attribution.h"
#include "sim/pipeline_sim.h"
#include "sim/run_report.h"
#include "support/chaos.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/prometheus.h"
#include "support/trace_context.h"
#include "support/tracer.h"

namespace pipemap::server {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One error document. `code` is a machine-matchable token (rejected,
/// draining, timed_out, invalid_argument, infeasible, frame_too_large,
/// internal); `detail` is free text and may contain hostile bytes — the
/// writer sanitizes it. Every error carries the request's trace id so a
/// failing request is still joinable across log, trace, and response.
std::string ErrorJson(std::string_view code, std::string_view detail,
                      std::uint64_t trace_id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(false);
  w.Key("code").String(code);
  w.Key("error").String(detail);
  if (trace_id != 0) w.Key("trace_id").String(FormatTraceId(trace_id));
  w.EndObject();
  return w.str();
}

/// Solver policy and objective fields, mirroring the CLI's --algorithm /
/// --objective / --floor mapping.
void ApplyPolicy(const ServerRequest& req, MapRequest* out) {
  if (req.objective == "latency") {
    out->solver = SolverPolicy::kLatency;
    if (req.floor > 0.0) {
      out->objective = MapObjective::kLatencyWithFloor;
      out->min_throughput = req.floor;
    } else {
      out->objective = MapObjective::kLatency;
    }
    return;
  }
  if (req.objective != "throughput") {
    throw InvalidArgument("unknown objective: " + req.objective);
  }
  out->objective = MapObjective::kThroughput;
  if (req.algorithm == "dp") {
    out->solver = SolverPolicy::kDp;
  } else if (req.algorithm == "greedy") {
    out->solver = SolverPolicy::kGreedy;
  } else if (req.algorithm == "auto") {
    out->solver = SolverPolicy::kAuto;
  } else if (req.algorithm == "brute") {
    out->solver = SolverPolicy::kBrute;
  } else {
    throw InvalidArgument("unknown algorithm: " + req.algorithm);
  }
}

/// The `overloaded` error document: same shape as ErrorJson plus the
/// backpressure hint, so a well-behaved client backs off instead of
/// hammering a shedding server.
std::string OverloadedJson(double retry_after_ms, std::uint64_t trace_id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(false);
  w.Key("code").String("overloaded");
  w.Key("error").String("server is overloaded; retry after the hint");
  w.Key("retry_after_ms").Double(retry_after_ms);
  if (trace_id != 0) w.Key("trace_id").String(FormatTraceId(trace_id));
  w.EndObject();
  return w.str();
}

OverloadConfig BuildOverloadConfig(const ServerConfig& config) {
  OverloadConfig out;
  out.enabled = config.overload_enabled;
  out.shed_watermark = config.shed_watermark;
  out.brownout_after_s = config.brownout_after_s;
  out.recover_after_s = config.recover_after_s;
  out.degraded_deadline_s = config.degraded_deadline_s;
  return out;
}

CircuitBreaker::Config SolverBreakerConfig(const ServerConfig& config) {
  CircuitBreaker::Config out;
  out.failure_threshold = config.solver_breaker_failures;
  out.cooldown_s = config.solver_breaker_cooldown_s;
  return out;
}

SimOptions BuildSimOptions(const ServerRequest& req) {
  SimOptions options;
  options.num_datasets = req.datasets;
  if (options.num_datasets < 1 || options.num_datasets > 1'000'000) {
    throw InvalidArgument("datasets must be in [1, 1000000], got " +
                          std::to_string(req.datasets));
  }
  options.warmup = options.num_datasets / 4;
  options.noise.systematic_stddev = req.noise;
  options.noise.jitter_stddev = req.noise / 3.0;
  options.noise.seed = static_cast<std::uint64_t>(req.seed);
  return options;
}

}  // namespace

/// One admitted request. The connection thread owns the promise's future
/// and blocks on it; a worker fulfills it. `admitted` anchors the
/// request's deadline, so queue wait counts against the budget. The
/// request's trace_id is always set by the time a Job exists (parsed or
/// generated at frame decode), and bytes_in/admitted_ns carry the decode
/// context the worker needs for the access-log line and the spans.
struct PipemapServer::Job {
  ServerRequest request;
  Clock::time_point admitted;
  std::size_t bytes_in = 0;
  /// Tracer-timebase admission stamp (0 when tracing is disabled): lets
  /// the worker record the queue-wait span with its true begin time.
  std::uint64_t admitted_ns = 0;
  std::promise<std::string> response;
};

struct PipemapServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

PipemapServer::PipemapServer(ServerConfig config)
    : config_(std::move(config)),
      engine_(config_.engine != nullptr ? config_.engine
                                        : &MappingEngine::Shared()),
      slo_(SloConfig{config_.slo_p99_ms, config_.slo_max_error_rate,
                     config_.slo_window_s}),
      overload_(BuildOverloadConfig(config_)),
      map_breaker_(SolverBreakerConfig(config_)),
      simulate_breaker_(SolverBreakerConfig(config_)),
      report_breaker_(SolverBreakerConfig(config_)) {
  if (config_.num_workers < 1) {
    throw InvalidArgument("ServerConfig::num_workers must be >= 1");
  }
  if (config_.queue_capacity < 1) {
    throw InvalidArgument("ServerConfig::queue_capacity must be >= 1");
  }
  if (!config_.cache_dir.empty()) {
    DiskPersistOptions persist;
    persist.dir = config_.cache_dir;
    persist.max_bytes = config_.cache_dir_max_bytes;
    engine_->cache().EnablePersistence(persist);
  }
#if !defined(PIPEMAP_NO_OBSERVABILITY)
  if (!config_.access_log_path.empty()) {
    AccessLogger::Options options;
    options.path = config_.access_log_path;
    options.max_bytes = config_.access_log_max_bytes;
    options.queue_capacity = config_.access_log_queue;
    access_log_ = std::make_unique<AccessLogger>(options);
  }
#endif
}

PipemapServer::~PipemapServer() { Drain(); }

void PipemapServer::Start() {
  if (started_.exchange(true)) {
    throw Error("PipemapServer::Start called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("invalid bind address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind " + config_.host + ":" + std::to_string(config_.port) +
                " failed: " + reason);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("listen failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void PipemapServer::Drain() {
  if (!started_.load() || stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting. shutdown() wakes the accept thread out of
  //    accept(); it sees draining_ and exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Let workers finish every admitted job, then exit. Connection
  //    threads are still alive and write those responses out. New frames
  //    arriving meanwhile are answered with a `draining` error at the
  //    connection layer (never enqueued).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Workers are gone, so no new spills can be enqueued: flushing here
  // guarantees every solve this process answered is on disk before the
  // drain report claims done — a restarted daemon on the same cache dir
  // starts fully warm.
  engine_->cache().FlushPersistence();

  // 3. Wake readers blocked on idle connections and join everything.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }

  // 4. Every request's access-log line is enqueued by now (workers and
  //    connection threads are joined); put them on disk so the drain
  //    report and post-mortem tooling see the complete log.
  FlushAccessLog();
}

ServerCounters PipemapServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void PipemapServer::PollOverload() {
  if (!config_.overload_enabled) return;
  const std::int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  Clock::now().time_since_epoch())
                                  .count();
  std::int64_t last = last_burn_poll_ns_.load(std::memory_order_relaxed);
  // ~10 Hz cap: losing the CAS race means another thread just polled.
  if (last != 0 && now_ns - last < 100'000'000) return;
  if (!last_burn_poll_ns_.compare_exchange_strong(last, now_ns,
                                                  std::memory_order_relaxed)) {
    return;
  }
  overload_.ObserveBurn(slo_.Snapshot().burning);
}

CircuitBreaker* PipemapServer::SolverBreaker(const std::string& op) {
  if (op == "map") return &map_breaker_;
  if (op == "simulate") return &simulate_breaker_;
  if (op == "report") return &report_breaker_;
  return nullptr;
}

void PipemapServer::ApplyBrownout(MapRequest* mr) {
  // Greedy-only portfolio for the throughput objective; the latency
  // solver has no cheaper stage to fall back to, so latency-shaped
  // requests keep their solver and only lose budget.
  if (mr->objective == MapObjective::kThroughput) {
    mr->solver = SolverPolicy::kGreedy;
  }
  const double cap = config_.degraded_deadline_s;
  if (cap > 0.0 &&
      (!Deadline::HasBudget(mr->time_budget_s) || mr->time_budget_s > cap)) {
    mr->time_budget_s = cap;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.degraded;
  }
  PIPEMAP_COUNTER_ADD("server.degraded", 1);
}

void PipemapServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void PipemapServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() from Drain lands here; any other error on a dying
      // listener also means we are done accepting.
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    // Bound the registry on long-running daemons: closed connections are
    // joined here instead of accumulating until Drain.
    ReapFinishedConnections();
  }
}

void PipemapServer::ConnectionLoop(Connection* conn) {
  if (config_.idle_timeout_s > 0.0) {
    // Slowloris guard: a receive timeout turns "peer drips bytes or
    // stalls forever" into an IdleTimeout from ReadFrame, freeing the
    // slot. Per-read, so an active connection is never reaped.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(config_.idle_timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (config_.idle_timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(conn->fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  std::string payload;
  for (;;) {
    std::string response;
    ChaosInjector::Global().MaybeDelay(ChaosSeam::kReadDelay);
    try {
      if (!ReadFrame(conn->fd, config_.max_frame_bytes, &payload)) break;
    } catch (const IdleTimeout&) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.idle_timeouts;
      }
      PIPEMAP_COUNTER_ADD("server.idle_timeouts", 1);
      break;  // stalled peer: free the slot
    } catch (const FrameTooLarge& e) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.parse_errors;
      }
      // The frame never parsed, so the client's trace_id (if any) is
      // unreadable; a generated id still makes the failure joinable
      // between the response and the access log.
      const std::uint64_t tid = GenerateTraceId();
      response = ErrorJson("frame_too_large", e.what(), tid);
      RequestOutcome outcome;
      outcome.status = "frame_too_large";
      FinishRequest(tid, "unknown", outcome, 0, response.size(), 0.0, 0.0,
                    0.0);
    } catch (const std::exception&) {
      break;  // mid-frame EOF or socket error: the stream is gone
    }
    if (ChaosInjector::Global().ShouldInject(ChaosSeam::kReadTrunc)) {
      // Behave exactly as if the client died mid-frame: drop the frame
      // and tear the connection down without a response.
      break;
    }

    if (response.empty()) {
      const Clock::time_point received = Clock::now();
      std::shared_ptr<Job> job;
      try {
        auto parsed = ParseServerRequest(payload);
        job = std::make_shared<Job>();
        job->request = std::move(parsed);
        // Admission assigns the TraceContext: a client-supplied id is
        // kept, everything else gets a fresh one, so every request in
        // the process is joinable across response / spans / access log.
        if (job->request.trace_id == 0) {
          job->request.trace_id = GenerateTraceId();
        }
        job->admitted = received;
        job->bytes_in = payload.size();
#if !defined(PIPEMAP_NO_OBSERVABILITY)
        if (Tracer::Enabled()) job->admitted_ns = Tracer::NowNs();
#endif
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.parse_errors;
        }
        const std::uint64_t tid = GenerateTraceId();
        response = ErrorJson("invalid_argument", e.what(), tid);
        RequestOutcome outcome;
        outcome.status = "invalid_argument";
        FinishRequest(tid, "unknown", outcome, payload.size(),
                      response.size(), 0.0, 0.0,
                      SecondsBetween(received, Clock::now()));
      }

      if (job != nullptr) {
        std::future<std::string> future = job->response.get_future();
        bool admitted = false;
        bool drained = false;
        bool shed = false;
        double retry_after_ms = 0.0;
        // Only solve-shaped work sheds: ping/stats/metrics are cheap and
        // are exactly what an operator needs while the server is hot.
        const bool sheddable = job->request.op == "map" ||
                               job->request.op == "report" ||
                               job->request.op == "simulate";
        // Refresh the burn signal (throttled) before the admission
        // decision; shedding itself reads queue depth under queue_mu_.
        PollOverload();
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          if (stop_workers_ || draining_.load(std::memory_order_acquire)) {
            drained = true;
          } else if (sheddable &&
                     overload_.ShouldShed(queue_.size(),
                                          config_.queue_capacity,
                                          &retry_after_ms)) {
            shed = true;
          } else if (queue_.size() >= config_.queue_capacity) {
            // full: reject now, never block the connection
          } else {
            queue_.push_back(job);
            admitted = true;
            PIPEMAP_GAUGE_SET("server.queue_depth", queue_.size());
          }
        }
        if (admitted) {
          queue_cv_.notify_one();
          PIPEMAP_COUNTER_ADD("server.accepted", 1);
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.accepted;
          }
          response = future.get();
        } else if (shed) {
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.shed;
          }
          response = OverloadedJson(retry_after_ms, job->request.trace_id);
          RequestOutcome outcome;
          outcome.status = "overloaded";
          FinishRequest(job->request.trace_id, job->request.op, outcome,
                        job->bytes_in, response.size(), 0.0, 0.0,
                        SecondsBetween(received, Clock::now()));
        } else if (drained) {
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.drained;
          }
          response = ErrorJson("draining",
                               "server is draining; request refused",
                               job->request.trace_id);
          RequestOutcome outcome;
          outcome.status = "draining";
          FinishRequest(job->request.trace_id, job->request.op, outcome,
                        job->bytes_in, response.size(), 0.0, 0.0,
                        SecondsBetween(received, Clock::now()));
        } else {
          PIPEMAP_COUNTER_ADD("server.rejected", 1);
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.rejected;
          }
          response = ErrorJson("rejected", "admission queue is full",
                               job->request.trace_id);
          RequestOutcome outcome;
          outcome.status = "rejected";
          FinishRequest(job->request.trace_id, job->request.op, outcome,
                        job->bytes_in, response.size(), 0.0, 0.0,
                        SecondsBetween(received, Clock::now()));
        }
      }
    }

    if (ChaosInjector::Global().ShouldInject(ChaosSeam::kConnDrop)) {
      // The response was computed but the "network" eats it: drop the
      // connection without writing, as a dying peer or a mid-write RST
      // would look to the client.
      break;
    }
    try {
      WriteFrame(conn->fd, response);
    } catch (const std::exception&) {
      break;  // peer went away; nothing left to answer
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true, std::memory_order_release);
}

void PipemapServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || stop_workers_; });
      if (queue_.empty()) return;  // stop_workers_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      PIPEMAP_GAUGE_SET("server.queue_depth", queue_.size());
    }

    const Clock::time_point start = Clock::now();
    // Queue wait counts against the budget: the remaining budget is what
    // is left of deadline_s measured from admission. An already-expired
    // deadline still solves, with a vanishing budget — the engine's
    // portfolio returns the greedy incumbent flagged timed_out instead of
    // the request hanging or silently running unbounded.
    double remaining = 0.0;
    if (Deadline::HasBudget(job->request.deadline_s)) {
      remaining = job->request.deadline_s - SecondsBetween(job->admitted, start);
      if (remaining <= 0.0) remaining = 1e-9;
    }
    const double queue_wait_s = SecondsBetween(job->admitted, start);
    ChaosInjector::Global().MaybeDelay(ChaosSeam::kSolverSlow);
    RequestOutcome outcome;
    // Brownout decision is taken per job at dispatch (not at admission),
    // so a queue drained after recovery serves full-fidelity again.
    PollOverload();
    outcome.degraded = overload_.degraded();
    std::string response = HandleRequest(job->request, remaining, &outcome);
    const Clock::time_point done = Clock::now();
    const double solve_s = SecondsBetween(start, done);
    const double total_s = SecondsBetween(job->admitted, done);
    const std::size_t bytes_out = response.size();
    job->response.set_value(std::move(response));

#if !defined(PIPEMAP_NO_OBSERVABILITY)
    // Correlated spans, all carrying the trace id as the arg: the whole
    // request from admission, the queue wait inside it, and the handler.
    // Explicit timestamps reconstruct the queue phase the worker never
    // saw live (admitted_ns was stamped by the connection thread).
    if (Tracer::Enabled() && job->admitted_ns != 0) {
      const auto span_arg =
          static_cast<std::int64_t>(job->request.trace_id) >= 0
              ? static_cast<std::int64_t>(job->request.trace_id)
              : std::int64_t{-1};
      const std::uint64_t start_ns =
          job->admitted_ns +
          static_cast<std::uint64_t>(queue_wait_s * 1e9);
      const std::uint64_t solve_ns =
          static_cast<std::uint64_t>(solve_s * 1e9);
      Tracer& tracer = Tracer::Global();
      tracer.Record("server.queue_wait", "server", job->admitted_ns,
                    start_ns - job->admitted_ns, span_arg);
      tracer.Record("server.solve", "server", start_ns, solve_ns, span_arg);
      tracer.Record("server.request", "server", job->admitted_ns,
                    start_ns - job->admitted_ns + solve_ns, span_arg);
    }
#endif

    PIPEMAP_HISTOGRAM_RECORD("server.request_us", total_s * 1e6);
    PIPEMAP_HISTOGRAM_RECORD("server.queue_wait_us", queue_wait_s * 1e6);
    PIPEMAP_HISTOGRAM_RECORD("server.solve_us", solve_s * 1e6);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.completed;
    }
    FinishRequest(job->request.trace_id, job->request.op, outcome,
                  job->bytes_in, bytes_out, queue_wait_s, solve_s, total_s);
  }
}

std::string PipemapServer::HandleRequest(const ServerRequest& request,
                                         double remaining_budget_s,
                                         RequestOutcome* outcome) {
  // Brownout only changes how the solver runs; ops that never solve are
  // served at full fidelity and must not be flagged degraded.
  if (request.op != "map" && request.op != "report") {
    outcome->degraded = false;
  }
  CircuitBreaker* breaker = SolverBreaker(request.op);
  if (breaker != nullptr && !breaker->Allow()) {
    // The op's recent history is a failure streak: fail fast instead of
    // burning a worker on a request that is overwhelmingly likely to die
    // the same way. Heals via the breaker's half-open probes.
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.breaker_fast_fails;
    }
    PIPEMAP_COUNTER_ADD("server.breaker_fast_fails", 1);
    outcome->status = "circuit_open";
    return ErrorJson("circuit_open",
                     "op '" + request.op +
                         "' is failing repeatedly; circuit breaker is open",
                     request.trace_id);
  }
  std::string response = DispatchRequest(request, remaining_budget_s, outcome);
  if (breaker != nullptr) {
    // Only internal failures count against the breaker: invalid input,
    // infeasibility, and resource limits are the request's fault, and a
    // storm of them must not lock healthy requests out.
    if (outcome->status == "internal") {
      breaker->RecordFailure();
    } else {
      breaker->RecordSuccess();
    }
  }
  return response;
}

std::string PipemapServer::DispatchRequest(const ServerRequest& request,
                                           double remaining_budget_s,
                                           RequestOutcome* outcome) {
  try {
    if (request.op == "ping") {
      JsonWriter w;
      w.BeginObject();
      w.Key("ok").Bool(true);
      w.Key("op").String("ping");
      w.Key("trace_id").String(FormatTraceId(request.trace_id));
      w.Key("draining").Bool(draining());
      w.EndObject();
      return w.str();
    }
    if (request.op == "stats") return HandleStats(request);
    if (request.op == "metrics") return HandleMetrics(request);
    if (request.op == "map") {
      return HandleMap(request, remaining_budget_s, outcome);
    }
    if (request.op == "simulate") return HandleSimulate(request);
    if (request.op == "report") {
      return HandleReport(request, remaining_budget_s, outcome);
    }
    outcome->status = "invalid_argument";
    return ErrorJson("invalid_argument", "unknown op: " + request.op,
                     request.trace_id);
  } catch (const Infeasible& e) {
    outcome->status = "infeasible";
    return ErrorJson("infeasible", e.what(), request.trace_id);
  } catch (const ResourceLimit& e) {
    outcome->status = "resource_limit";
    return ErrorJson("resource_limit", e.what(), request.trace_id);
  } catch (const InvalidArgument& e) {
    outcome->status = "invalid_argument";
    return ErrorJson("invalid_argument", e.what(), request.trace_id);
  } catch (const std::exception& e) {
    outcome->status = "internal";
    return ErrorJson("internal", e.what(), request.trace_id);
  }
}

std::string PipemapServer::HandleMap(const ServerRequest& request,
                                     double budget_s,
                                     RequestOutcome* outcome) {
  if (!request.has_chain || !request.has_machine) {
    throw InvalidArgument("op map needs chain and machine sections");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);

  MapRequest mr;
  mr.chain = &chain;
  mr.machine = machine;
  mr.total_procs = request.procs > 0 ? request.procs : machine.total_procs();
  mr.options.num_threads = request.threads;
  mr.use_cache = request.use_cache;
  mr.time_budget_s = budget_s;  // 0 = no deadline (Deadline::HasBudget)
  mr.trace_id = request.trace_id;
  ApplyPolicy(request, &mr);
  if (outcome->degraded) ApplyBrownout(&mr);

  const MapResponse response = engine_->Map(mr);
  const Evaluator eval(chain, mr.total_procs, machine.node_memory_bytes,
                       request.threads);
  const Mapping mapping =
      FeasibilityChecker(machine).MakeFeasible(response.mapping, eval);

  const bool deadline_expired = response.timed_out || response.budget_exhausted;
  if (deadline_expired) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.timed_out;
  }
  outcome->solver = response.solver;
  outcome->cache_hit = response.cache_hit;
  outcome->cache_tier = response.cache_tier;
  outcome->shared_solve = response.shared_solve;
  outcome->timed_out = deadline_expired;

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("map");
  w.Key("degraded").Bool(outcome->degraded);
  w.Key("trace_id").String(FormatTraceId(request.trace_id));
  w.Key("mapping").String(SerializeMapping(mapping));
  w.Key("objective_value").Double(response.objective_value);
  w.Key("throughput").Double(response.throughput);
  w.Key("latency").Double(response.latency);
  w.Key("solver").String(response.solver);
  w.Key("exact").Bool(response.exact);
  w.Key("cache_hit").Bool(response.cache_hit);
  w.Key("cache_tier").String(response.cache_tier);
  w.Key("shared_solve").Bool(response.shared_solve);
  w.Key("timed_out").Bool(response.timed_out);
  w.Key("budget_exhausted").Bool(response.budget_exhausted);
  w.Key("deadline_expired").Bool(deadline_expired);
  w.Key("solve_seconds").Double(response.solve_seconds);
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleSimulate(const ServerRequest& request) {
  if (!request.has_chain || !request.has_machine || !request.has_mapping) {
    throw InvalidArgument("op simulate needs chain, machine, and mapping");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);
  const Mapping mapping = ParseMapping(request.mapping_text);
  const SimOptions options = BuildSimOptions(request);

  const SimResult result = PipelineSimulator(chain).Run(mapping, options);

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("simulate");
  w.Key("trace_id").String(FormatTraceId(request.trace_id));
  w.Key("datasets").Int(options.num_datasets);
  w.Key("throughput").Double(result.throughput);
  w.Key("mean_latency").Double(result.mean_latency);
  w.Key("makespan").Double(result.makespan);
  w.Key("module_utilization").BeginArray();
  for (const double u : result.module_utilization) w.Double(u);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleReport(const ServerRequest& request,
                                        double budget_s,
                                        RequestOutcome* outcome) {
  if (!request.has_chain || !request.has_machine) {
    throw InvalidArgument("op report needs chain and machine sections");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);

  MapRequest mr;
  mr.chain = &chain;
  mr.machine = machine;
  mr.total_procs = request.procs > 0 ? request.procs : machine.total_procs();
  mr.options.num_threads = request.threads;
  mr.use_cache = request.use_cache;
  mr.time_budget_s = budget_s;
  mr.trace_id = request.trace_id;
  ApplyPolicy(request, &mr);
  if (outcome->degraded) ApplyBrownout(&mr);

  const MapResponse response = engine_->Map(mr);
  const Evaluator eval(chain, mr.total_procs, machine.node_memory_bytes,
                       request.threads);
  const Mapping mapping =
      FeasibilityChecker(machine).MakeFeasible(response.mapping, eval);

  const SimOptions options = BuildSimOptions(request);
  const SimResult result = PipelineSimulator(chain).Run(mapping, options);
  const BottleneckAttribution attribution =
      AttributeBottleneck(eval, mapping, result, options.num_datasets);

  RunReportOptions report_options;
  report_options.num_datasets = options.num_datasets;
  const std::string report =
      BuildRunReportJson(eval, mapping, result, attribution, report_options);

  const bool deadline_expired = response.timed_out || response.budget_exhausted;
  if (deadline_expired) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.timed_out;
  }
  outcome->solver = response.solver;
  outcome->cache_hit = response.cache_hit;
  outcome->cache_tier = response.cache_tier;
  outcome->shared_solve = response.shared_solve;
  outcome->timed_out = deadline_expired;

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("report");
  w.Key("degraded").Bool(outcome->degraded);
  w.Key("trace_id").String(FormatTraceId(request.trace_id));
  w.Key("solver").String(response.solver);
  w.Key("timed_out").Bool(deadline_expired);
  w.Key("report").Raw(report);
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleStats(const ServerRequest& request) {
  const ServerCounters snapshot = counters();
  const SolutionCacheStats cache = engine_->cache().stats();
  const SingleFlightStats flights = engine_->single_flight_stats();
  const SloState slo = slo_.Snapshot();
  const AccessLogger::Stats log_stats = access_log_stats();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("stats");
  w.Key("trace_id").String(FormatTraceId(request.trace_id));
  w.Key("server").BeginObject();
  w.Key("connections").UInt(snapshot.connections);
  w.Key("accepted").UInt(snapshot.accepted);
  w.Key("rejected").UInt(snapshot.rejected);
  w.Key("completed").UInt(snapshot.completed);
  w.Key("timed_out").UInt(snapshot.timed_out);
  w.Key("parse_errors").UInt(snapshot.parse_errors);
  w.Key("drained").UInt(snapshot.drained);
  w.Key("shed").UInt(snapshot.shed);
  w.Key("degraded").UInt(snapshot.degraded);
  w.Key("idle_timeouts").UInt(snapshot.idle_timeouts);
  w.Key("breaker_fast_fails").UInt(snapshot.breaker_fast_fails);
  w.Key("queue_depth").UInt(depth);
  w.Key("queue_capacity").UInt(config_.queue_capacity);
  w.Key("workers").Int(config_.num_workers);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("hits").UInt(cache.hits);
  w.Key("misses").UInt(cache.misses);
  w.Key("evictions").UInt(cache.evictions);
  w.Key("inserts").UInt(cache.inserts);
  w.Key("entries").UInt(cache.entries);
  w.Key("capacity").UInt(cache.capacity);
  w.Key("persist").BeginObject();
  w.Key("enabled").Bool(cache.persist_enabled);
  w.Key("hits").UInt(cache.persist_hits);
  w.Key("misses").UInt(cache.persist_misses);
  w.Key("writes").UInt(cache.persist_writes);
  w.Key("write_drops").UInt(cache.persist_write_drops);
  w.Key("corrupt").UInt(cache.persist_corrupt);
  w.Key("errors").UInt(cache.persist_errors);
  w.Key("evicted").UInt(cache.persist_evicted);
  w.Key("read_only").Bool(cache.persist_read_only);
  w.Key("breaker_state").String(cache.persist_breaker_state);
  w.Key("breaker_opens").UInt(cache.persist_breaker_opens);
  w.Key("breaker_skips").UInt(cache.persist_breaker_skips);
  w.EndObject();
  w.EndObject();
  w.Key("singleflight").BeginObject();
  w.Key("leaders").UInt(flights.leaders);
  w.Key("shared").UInt(flights.shared);
  w.Key("wait_timeouts").UInt(flights.wait_timeouts);
  w.Key("failed_leaders").UInt(flights.failed_leaders);
  w.EndObject();
  w.Key("slo").BeginObject();
  w.Key("window_s").Int(slo.window_s);
  w.Key("requests").UInt(slo.requests);
  w.Key("errors").UInt(slo.errors);
  w.Key("error_rate").Double(slo.error_rate);
  w.Key("p50_ms").Double(slo.p50_ms);
  w.Key("p99_ms").Double(slo.p99_ms);
  w.Key("p99_objective_ms").Double(slo.p99_objective_ms);
  w.Key("error_rate_objective").Double(slo.error_rate_objective);
  w.Key("p99_burn_ratio").Double(slo.p99_burn_ratio);
  w.Key("error_burn_ratio").Double(slo.error_burn_ratio);
  w.Key("p99_breach").Bool(slo.p99_breach);
  w.Key("error_breach").Bool(slo.error_breach);
  w.Key("burning").Bool(slo.burning);
  w.EndObject();
  w.Key("access_log").BeginObject();
  w.Key("enabled").Bool(access_log_ != nullptr);
  w.Key("lines_written").UInt(log_stats.lines_written);
  w.Key("lines_dropped").UInt(log_stats.lines_dropped);
  w.Key("rotations").UInt(log_stats.rotations);
  w.Key("bytes_written").UInt(log_stats.bytes_written);
  w.EndObject();
  const OverloadState overload = overload_.state();
  w.Key("overload").BeginObject();
  w.Key("enabled").Bool(config_.overload_enabled);
  w.Key("burning").Bool(overload.burning);
  w.Key("shedding").Bool(overload.shedding);
  w.Key("degraded").Bool(overload.degraded);
  w.Key("shed_total").UInt(overload.shed_total);
  w.Key("brownout_entries").UInt(overload.brownout_entries);
  w.Key("brownout_recoveries").UInt(overload.brownout_recoveries);
  w.EndObject();
  w.Key("breakers").BeginObject();
  const auto breaker_block = [&w](const char* name, CircuitBreaker& b) {
    const CircuitBreaker::Stats stats = b.stats();
    w.Key(name).BeginObject();
    w.Key("state").String(ToString(b.state()));
    w.Key("opens").UInt(stats.opens);
    w.Key("rejected").UInt(stats.rejected);
    w.EndObject();
  };
  breaker_block("map", map_breaker_);
  breaker_block("simulate", simulate_breaker_);
  breaker_block("report", report_breaker_);
  w.EndObject();
  ChaosInjector& chaos = ChaosInjector::Global();
  w.Key("chaos").BeginObject();
  w.Key("enabled").Bool(chaos.enabled());
  const ChaosStats chaos_stats = chaos.stats();
  for (int s = 0; s < kChaosSeamCount; ++s) {
    w.Key(ChaosSeamName(static_cast<ChaosSeam>(s)))
        .UInt(chaos_stats.injected[s]);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleMetrics(const ServerRequest& request) {
  // Publish the rolling SLO window as gauges first, so one scrape sees a
  // consistent picture: request histograms and burn state side by side.
  PublishSloGauges();
  const std::string exposition =
      PrometheusExposition(MetricsRegistry::Global().Snapshot());
  // Wrapped in the protocol's one-JSON-object response contract; the
  // scraper unwraps `exposition` (tools/check_prometheus.py does). An
  // empty registry — metrics disabled, or PIPEMAP_NO_OBSERVABILITY —
  // yields an empty string, which is a valid (empty-series) exposition.
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("metrics");
  w.Key("trace_id").String(FormatTraceId(request.trace_id));
  w.Key("content_type").String("text/plain; version=0.0.4");
  w.Key("exposition").String(exposition);
  w.EndObject();
  return w.str();
}

void PipemapServer::PublishSloGauges() {
#if !defined(PIPEMAP_NO_OBSERVABILITY)
  const SloState slo = slo_.Snapshot();
  PIPEMAP_GAUGE_SET("slo.window_requests", static_cast<double>(slo.requests));
  PIPEMAP_GAUGE_SET("slo.window_errors", static_cast<double>(slo.errors));
  PIPEMAP_GAUGE_SET("slo.error_rate", slo.error_rate);
  PIPEMAP_GAUGE_SET("slo.p50_ms", slo.p50_ms);
  PIPEMAP_GAUGE_SET("slo.p99_ms", slo.p99_ms);
  PIPEMAP_GAUGE_SET("slo.p99_burn_ratio", slo.p99_burn_ratio);
  PIPEMAP_GAUGE_SET("slo.error_burn_ratio", slo.error_burn_ratio);
  PIPEMAP_GAUGE_SET("slo.burning", slo.burning ? 1.0 : 0.0);
#endif
}

void PipemapServer::FinishRequest(std::uint64_t trace_id,
                                  const std::string& op,
                                  const RequestOutcome& outcome,
                                  std::size_t bytes_in, std::size_t bytes_out,
                                  double queue_wait_s, double solve_s,
                                  double total_s) {
#if !defined(PIPEMAP_NO_OBSERVABILITY)
  // Shed requests never enter the SLO window: they are backpressure, not
  // served work, and counting them as errors (or as microsecond
  // latencies) would wedge the burn signal on — shedding would cause the
  // error breach that causes shedding.
  if (outcome.status != "overloaded") {
    slo_.Record(total_s * 1e3, outcome.status != "ok");
  }
  if (access_log_ != nullptr) {
    // Hand-rolled compact object: the access log is JSONL, one line per
    // request (JsonWriter pretty-prints across lines). Strings that can
    // carry hostile bytes (op echoes request text) go through the shared
    // escaper, so a line is always one valid JSON document.
    std::string line;
    line.reserve(256);
    line += "{\"trace_id\": \"";
    line += FormatTraceId(trace_id);
    line += "\", \"op\": ";
    JsonWriter::AppendEscaped(line, op);
    line += ", \"status\": ";
    JsonWriter::AppendEscaped(line, outcome.status);
    line += ", \"bytes_in\": " + std::to_string(bytes_in);
    line += ", \"bytes_out\": " + std::to_string(bytes_out);
    line += ", \"queue_wait_us\": " +
            std::to_string(static_cast<std::uint64_t>(queue_wait_s * 1e6));
    line += ", \"solve_us\": " +
            std::to_string(static_cast<std::uint64_t>(solve_s * 1e6));
    line += ", \"total_us\": " +
            std::to_string(static_cast<std::uint64_t>(total_s * 1e6));
    line += std::string(", \"cache_hit\": ") +
            (outcome.cache_hit ? "true" : "false");
    line += ", \"cache_tier\": ";
    JsonWriter::AppendEscaped(line, outcome.cache_tier);
    line += std::string(", \"shared_solve\": ") +
            (outcome.shared_solve ? "true" : "false");
    line += ", \"solver\": ";
    JsonWriter::AppendEscaped(line, outcome.solver);
    line += std::string(", \"timed_out\": ") +
            (outcome.timed_out ? "true" : "false");
    line += std::string(", \"degraded\": ") +
            (outcome.degraded ? "true" : "false");
    line += "}";
    access_log_->Append(line);
  }
#else
  (void)trace_id;
  (void)op;
  (void)outcome;
  (void)bytes_in;
  (void)bytes_out;
  (void)queue_wait_s;
  (void)solve_s;
  (void)total_s;
#endif
}

AccessLogger::Stats PipemapServer::access_log_stats() const {
  if (access_log_ == nullptr) return AccessLogger::Stats{};
  return access_log_->stats();
}

void PipemapServer::FlushAccessLog() {
  if (access_log_ != nullptr) access_log_->Flush();
}

}  // namespace pipemap::server
