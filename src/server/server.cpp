#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "core/evaluator.h"
#include "engine/mapping_engine.h"
#include "io/serialize.h"
#include "machine/feasible.h"
#include "sim/attribution.h"
#include "sim/pipeline_sim.h"
#include "sim/run_report.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/metrics.h"

namespace pipemap::server {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One error document. `code` is a machine-matchable token (rejected,
/// draining, timed_out, invalid_argument, infeasible, frame_too_large,
/// internal); `detail` is free text and may contain hostile bytes — the
/// writer sanitizes it.
std::string ErrorJson(std::string_view code, std::string_view detail) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(false);
  w.Key("code").String(code);
  w.Key("error").String(detail);
  w.EndObject();
  return w.str();
}

/// Solver policy and objective fields, mirroring the CLI's --algorithm /
/// --objective / --floor mapping.
void ApplyPolicy(const ServerRequest& req, MapRequest* out) {
  if (req.objective == "latency") {
    out->solver = SolverPolicy::kLatency;
    if (req.floor > 0.0) {
      out->objective = MapObjective::kLatencyWithFloor;
      out->min_throughput = req.floor;
    } else {
      out->objective = MapObjective::kLatency;
    }
    return;
  }
  if (req.objective != "throughput") {
    throw InvalidArgument("unknown objective: " + req.objective);
  }
  out->objective = MapObjective::kThroughput;
  if (req.algorithm == "dp") {
    out->solver = SolverPolicy::kDp;
  } else if (req.algorithm == "greedy") {
    out->solver = SolverPolicy::kGreedy;
  } else if (req.algorithm == "auto") {
    out->solver = SolverPolicy::kAuto;
  } else if (req.algorithm == "brute") {
    out->solver = SolverPolicy::kBrute;
  } else {
    throw InvalidArgument("unknown algorithm: " + req.algorithm);
  }
}

SimOptions BuildSimOptions(const ServerRequest& req) {
  SimOptions options;
  options.num_datasets = req.datasets;
  if (options.num_datasets < 1 || options.num_datasets > 1'000'000) {
    throw InvalidArgument("datasets must be in [1, 1000000], got " +
                          std::to_string(req.datasets));
  }
  options.warmup = options.num_datasets / 4;
  options.noise.systematic_stddev = req.noise;
  options.noise.jitter_stddev = req.noise / 3.0;
  options.noise.seed = static_cast<std::uint64_t>(req.seed);
  return options;
}

}  // namespace

/// One admitted request. The connection thread owns the promise's future
/// and blocks on it; a worker fulfills it. `admitted` anchors the
/// request's deadline, so queue wait counts against the budget.
struct PipemapServer::Job {
  ServerRequest request;
  Clock::time_point admitted;
  std::promise<std::string> response;
};

struct PipemapServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

PipemapServer::PipemapServer(ServerConfig config)
    : config_(std::move(config)),
      engine_(config_.engine != nullptr ? config_.engine
                                        : &MappingEngine::Shared()) {
  if (config_.num_workers < 1) {
    throw InvalidArgument("ServerConfig::num_workers must be >= 1");
  }
  if (config_.queue_capacity < 1) {
    throw InvalidArgument("ServerConfig::queue_capacity must be >= 1");
  }
}

PipemapServer::~PipemapServer() { Drain(); }

void PipemapServer::Start() {
  if (started_.exchange(true)) {
    throw Error("PipemapServer::Start called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("invalid bind address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind " + config_.host + ":" + std::to_string(config_.port) +
                " failed: " + reason);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("listen failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void PipemapServer::Drain() {
  if (!started_.load() || stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting. shutdown() wakes the accept thread out of
  //    accept(); it sees draining_ and exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Let workers finish every admitted job, then exit. Connection
  //    threads are still alive and write those responses out. New frames
  //    arriving meanwhile are answered with a `draining` error at the
  //    connection layer (never enqueued).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 3. Wake readers blocked on idle connections and join everything.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

ServerCounters PipemapServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void PipemapServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void PipemapServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() from Drain lands here; any other error on a dying
      // listener also means we are done accepting.
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    // Bound the registry on long-running daemons: closed connections are
    // joined here instead of accumulating until Drain.
    ReapFinishedConnections();
  }
}

void PipemapServer::ConnectionLoop(Connection* conn) {
  std::string payload;
  for (;;) {
    std::string response;
    try {
      if (!ReadFrame(conn->fd, config_.max_frame_bytes, &payload)) break;
    } catch (const FrameTooLarge& e) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.parse_errors;
      response = ErrorJson("frame_too_large", e.what());
    } catch (const std::exception&) {
      break;  // mid-frame EOF or socket error: the stream is gone
    }

    if (response.empty()) {
      std::shared_ptr<Job> job;
      try {
        auto parsed = ParseServerRequest(payload);
        job = std::make_shared<Job>();
        job->request = std::move(parsed);
        job->admitted = Clock::now();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.parse_errors;
        response = ErrorJson("invalid_argument", e.what());
      }

      if (job != nullptr) {
        std::future<std::string> future = job->response.get_future();
        bool admitted = false;
        bool drained = false;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          if (stop_workers_ || draining_.load(std::memory_order_acquire)) {
            drained = true;
          } else if (queue_.size() >= config_.queue_capacity) {
            // full: reject now, never block the connection
          } else {
            queue_.push_back(job);
            admitted = true;
            PIPEMAP_GAUGE_SET("server.queue_depth", queue_.size());
          }
        }
        if (admitted) {
          queue_cv_.notify_one();
          PIPEMAP_COUNTER_ADD("server.accepted", 1);
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.accepted;
          }
          response = future.get();
        } else if (drained) {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.drained;
          response = ErrorJson("draining",
                               "server is draining; request refused");
        } else {
          PIPEMAP_COUNTER_ADD("server.rejected", 1);
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.rejected;
          }
          response = ErrorJson("rejected", "admission queue is full");
        }
      }
    }

    try {
      WriteFrame(conn->fd, response);
    } catch (const std::exception&) {
      break;  // peer went away; nothing left to answer
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true, std::memory_order_release);
}

void PipemapServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || stop_workers_; });
      if (queue_.empty()) return;  // stop_workers_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      PIPEMAP_GAUGE_SET("server.queue_depth", queue_.size());
    }

    const Clock::time_point start = Clock::now();
    // Queue wait counts against the budget: the remaining budget is what
    // is left of deadline_s measured from admission. An already-expired
    // deadline still solves, with a vanishing budget — the engine's
    // portfolio returns the greedy incumbent flagged timed_out instead of
    // the request hanging or silently running unbounded.
    double remaining = 0.0;
    if (Deadline::HasBudget(job->request.deadline_s)) {
      remaining = job->request.deadline_s - SecondsBetween(job->admitted, start);
      if (remaining <= 0.0) remaining = 1e-9;
    }
    std::string response = HandleRequest(job->request, remaining);
    job->response.set_value(std::move(response));

    const double micros = SecondsBetween(start, Clock::now()) * 1e6;
    PIPEMAP_HISTOGRAM_RECORD("server.request_us", micros);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.completed;
    }
  }
}

std::string PipemapServer::HandleRequest(const ServerRequest& request,
                                         double remaining_budget_s) {
  try {
    if (request.op == "ping") {
      JsonWriter w;
      w.BeginObject();
      w.Key("ok").Bool(true);
      w.Key("op").String("ping");
      w.Key("draining").Bool(draining());
      w.EndObject();
      return w.str();
    }
    if (request.op == "stats") return HandleStats();
    if (request.op == "map") return HandleMap(request, remaining_budget_s);
    if (request.op == "simulate") return HandleSimulate(request);
    if (request.op == "report") return HandleReport(request, remaining_budget_s);
    return ErrorJson("invalid_argument", "unknown op: " + request.op);
  } catch (const Infeasible& e) {
    return ErrorJson("infeasible", e.what());
  } catch (const ResourceLimit& e) {
    return ErrorJson("resource_limit", e.what());
  } catch (const InvalidArgument& e) {
    return ErrorJson("invalid_argument", e.what());
  } catch (const std::exception& e) {
    return ErrorJson("internal", e.what());
  }
}

std::string PipemapServer::HandleMap(const ServerRequest& request,
                                     double budget_s) {
  if (!request.has_chain || !request.has_machine) {
    throw InvalidArgument("op map needs chain and machine sections");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);

  MapRequest mr;
  mr.chain = &chain;
  mr.machine = machine;
  mr.total_procs = request.procs > 0 ? request.procs : machine.total_procs();
  mr.options.num_threads = request.threads;
  mr.use_cache = request.use_cache;
  mr.time_budget_s = budget_s;  // 0 = no deadline (Deadline::HasBudget)
  ApplyPolicy(request, &mr);

  const MapResponse response = engine_->Map(mr);
  const Evaluator eval(chain, mr.total_procs, machine.node_memory_bytes,
                       request.threads);
  const Mapping mapping =
      FeasibilityChecker(machine).MakeFeasible(response.mapping, eval);

  const bool deadline_expired = response.timed_out || response.budget_exhausted;
  if (deadline_expired) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.timed_out;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("map");
  w.Key("mapping").String(SerializeMapping(mapping));
  w.Key("objective_value").Double(response.objective_value);
  w.Key("throughput").Double(response.throughput);
  w.Key("latency").Double(response.latency);
  w.Key("solver").String(response.solver);
  w.Key("exact").Bool(response.exact);
  w.Key("cache_hit").Bool(response.cache_hit);
  w.Key("timed_out").Bool(response.timed_out);
  w.Key("budget_exhausted").Bool(response.budget_exhausted);
  w.Key("deadline_expired").Bool(deadline_expired);
  w.Key("solve_seconds").Double(response.solve_seconds);
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleSimulate(const ServerRequest& request) {
  if (!request.has_chain || !request.has_machine || !request.has_mapping) {
    throw InvalidArgument("op simulate needs chain, machine, and mapping");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);
  const Mapping mapping = ParseMapping(request.mapping_text);
  const SimOptions options = BuildSimOptions(request);

  const SimResult result = PipelineSimulator(chain).Run(mapping, options);

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("simulate");
  w.Key("datasets").Int(options.num_datasets);
  w.Key("throughput").Double(result.throughput);
  w.Key("mean_latency").Double(result.mean_latency);
  w.Key("makespan").Double(result.makespan);
  w.Key("module_utilization").BeginArray();
  for (const double u : result.module_utilization) w.Double(u);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleReport(const ServerRequest& request,
                                        double budget_s) {
  if (!request.has_chain || !request.has_machine) {
    throw InvalidArgument("op report needs chain and machine sections");
  }
  const TaskChain chain = ParseChain(request.chain_text);
  const MachineConfig machine = ParseMachine(request.machine_text);

  MapRequest mr;
  mr.chain = &chain;
  mr.machine = machine;
  mr.total_procs = request.procs > 0 ? request.procs : machine.total_procs();
  mr.options.num_threads = request.threads;
  mr.use_cache = request.use_cache;
  mr.time_budget_s = budget_s;
  ApplyPolicy(request, &mr);

  const MapResponse response = engine_->Map(mr);
  const Evaluator eval(chain, mr.total_procs, machine.node_memory_bytes,
                       request.threads);
  const Mapping mapping =
      FeasibilityChecker(machine).MakeFeasible(response.mapping, eval);

  const SimOptions options = BuildSimOptions(request);
  const SimResult result = PipelineSimulator(chain).Run(mapping, options);
  const BottleneckAttribution attribution =
      AttributeBottleneck(eval, mapping, result, options.num_datasets);

  RunReportOptions report_options;
  report_options.num_datasets = options.num_datasets;
  const std::string report =
      BuildRunReportJson(eval, mapping, result, attribution, report_options);

  if (response.timed_out || response.budget_exhausted) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.timed_out;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("report");
  w.Key("solver").String(response.solver);
  w.Key("timed_out").Bool(response.timed_out || response.budget_exhausted);
  w.Key("report").Raw(report);
  w.EndObject();
  return w.str();
}

std::string PipemapServer::HandleStats() {
  const ServerCounters snapshot = counters();
  const SolutionCacheStats cache = engine_->cache().stats();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("op").String("stats");
  w.Key("server").BeginObject();
  w.Key("connections").UInt(snapshot.connections);
  w.Key("accepted").UInt(snapshot.accepted);
  w.Key("rejected").UInt(snapshot.rejected);
  w.Key("completed").UInt(snapshot.completed);
  w.Key("timed_out").UInt(snapshot.timed_out);
  w.Key("parse_errors").UInt(snapshot.parse_errors);
  w.Key("drained").UInt(snapshot.drained);
  w.Key("queue_depth").UInt(depth);
  w.Key("queue_capacity").UInt(config_.queue_capacity);
  w.Key("workers").Int(config_.num_workers);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("hits").UInt(cache.hits);
  w.Key("misses").UInt(cache.misses);
  w.Key("evictions").UInt(cache.evictions);
  w.Key("inserts").UInt(cache.inserts);
  w.Key("entries").UInt(cache.entries);
  w.Key("capacity").UInt(cache.capacity);
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace pipemap::server
