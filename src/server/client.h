// Blocking client for pipemap_server. One ServerClient owns one
// connection; requests are issued serially on it (the protocol is
// strictly request/response per connection — concurrency comes from
// opening more connections, which is exactly what the load generator
// does).
#pragma once

#include <string>

#include "server/protocol.h"

namespace pipemap::server {

class ServerClient {
 public:
  /// Connects immediately; throws pipemap::Error on failure.
  ServerClient(const std::string& host, int port);
  ~ServerClient();

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;
  ServerClient(ServerClient&& other) noexcept;
  ServerClient& operator=(ServerClient&&) = delete;

  /// Sends one request and blocks for its JSON response. Throws
  /// pipemap::Error when the connection dies mid-exchange.
  std::string Call(const ServerRequest& request);

  /// Sends a raw payload frame (not necessarily a well-formed request —
  /// the hostile-input tests use this) and returns the response.
  std::string CallRaw(std::string_view payload);

  /// Half-closes the write side so the server sees a clean EOF.
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace pipemap::server
