#include "core/evaluator.h"

#include <algorithm>
#include <limits>

#include "core/simd_kernels.h"
#include "costmodel/memory.h"
#include "costmodel/poly.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/tracer.h"

namespace pipemap {
namespace {

// Above this machine size the O(k P^2) external-communication tables stop
// paying for themselves; fall back to direct cost-function calls.
constexpr int kTabulationLimit = 512;

/// Fills row[p] = cost.Eval(p) for p in [1, max_p]. Section-5 polynomial
/// costs take the vectorized kernel (bitwise identical to per-entry Eval:
/// same expression, same association, no FMA contraction on either path);
/// everything else calls Eval per entry.
void FillScalarRow(const ScalarCost& cost, double* row, int max_p) {
  if (const auto* poly = dynamic_cast<const PolyScalarCost*>(&cost)) {
    simd::PolyScalarRow(poly->coeffs().data(), row, max_p);
    return;
  }
  for (int p = 1; p <= max_p; ++p) row[p] = cost.Eval(p);
}

/// Fills row[pr] = cost.Eval(ps, pr) for pr in [1, max_p] at fixed sender
/// count ps; polynomial pair costs take the vectorized kernel.
void FillPairRow(const PairCost& cost, int ps, double* row, int max_p) {
  if (const auto* poly = dynamic_cast<const PolyPairCost*>(&cost)) {
    simd::PolyPairRow(poly->coeffs().data(), ps, row, max_p);
    return;
  }
  for (int pr = 1; pr <= max_p; ++pr) row[pr] = cost.Eval(ps, pr);
}

}  // namespace

Evaluator::Evaluator(const TaskChain& chain, int max_procs,
                     double node_memory_bytes, int num_threads)
    : chain_(&chain),
      k_(chain.size()),
      max_procs_(max_procs),
      node_memory_bytes_(node_memory_bytes),
      tabulated_(max_procs <= kTabulationLimit) {
  PIPEMAP_CHECK(max_procs_ >= 1, "Evaluator: need at least one processor");
  PIPEMAP_CHECK(node_memory_bytes_ > 0.0,
                "Evaluator: node memory must be positive");
  const ChainCostModel& costs = chain.costs();
  const int pp = max_procs_ + 1;
  num_threads = ThreadPool::ResolveThreads(num_threads);

  PIPEMAP_TRACE_SPAN("evaluator.tabulate", "evaluator", max_procs_);

  if (tabulated_) {
    exec_table_.assign(static_cast<std::size_t>(k_) * pp, 0.0);
    icom_table_.assign(static_cast<std::size_t>(std::max(0, k_ - 1)) * pp,
                       0.0);
    body_prefix_.assign(static_cast<std::size_t>(k_ + 1) * pp, 0.0);
    ecom_table_.assign(
        static_cast<std::size_t>(std::max(0, k_ - 1)) * pp * pp, 0.0);
    for (int t = 0; t < k_; ++t) {
      FillScalarRow(costs.ExecFn(t),
                    &exec_table_[static_cast<std::size_t>(t) * pp],
                    max_procs_);
    }
    PIPEMAP_COUNTER_ADD("evaluator.exec_evals",
                        static_cast<std::uint64_t>(k_) * max_procs_);
    for (int e = 0; e < k_ - 1; ++e) {
      FillScalarRow(costs.IComFn(e),
                    &icom_table_[static_cast<std::size_t>(e) * pp],
                    max_procs_);
    }
    PIPEMAP_COUNTER_ADD(
        "evaluator.icom_evals",
        static_cast<std::uint64_t>(std::max(0, k_ - 1)) * max_procs_);
    // The external-communication table is the expensive part —
    // (k-1)·(P+1)² cost-function calls. Each (edge, sender) pair owns a
    // disjoint row of the table, so the fill is embarrassingly parallel.
    ParallelFor(
        num_threads, static_cast<std::int64_t>(std::max(0, k_ - 1)) * max_procs_,
        ParallelSchedule::kDynamic, std::max(1, max_procs_ / 4),
        [&](int, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            const int e = static_cast<int>(i / max_procs_);
            const int ps = static_cast<int>(i % max_procs_) + 1;
            double* row =
                &ecom_table_[(static_cast<std::size_t>(e) * pp + ps) * pp];
            FillPairRow(costs.EComFn(e), ps, row, max_procs_);
          }
          // One bulk add per chunk keeps the counter out of the fill loop.
          PIPEMAP_COUNTER_ADD(
              "evaluator.ecom_evals",
              static_cast<std::uint64_t>(end - begin) * max_procs_);
        });
    for (int p = 1; p <= max_procs_; ++p) {
      double acc = 0.0;
      body_prefix_[p] = 0.0;
      for (int t = 0; t < k_; ++t) {
        acc += exec_table_[static_cast<std::size_t>(t) * pp + p];
        if (t > 0) {
          acc += icom_table_[static_cast<std::size_t>(t - 1) * pp + p];
        }
        body_prefix_[static_cast<std::size_t>(t + 1) * pp + p] = acc;
      }
    }
  }

  min_procs_.assign(static_cast<std::size_t>(k_) * k_, 0);
  replicable_.assign(static_cast<std::size_t>(k_) * k_, 0);
  for (int first = 0; first < k_; ++first) {
    for (int last = first; last < k_; ++last) {
      min_procs_[static_cast<std::size_t>(first) * k_ + last] =
          MinProcsUncached(first, last);
      replicable_[static_cast<std::size_t>(first) * k_ + last] =
          chain.RangeReplicable(first, last) ? 1 : 0;
    }
  }

  // Content hashes for incremental re-solves: a task's hash covers its
  // execution row, an edge's its redistribution row and external block.
  // Cheap next to the tabulation itself (one pass over the same memory).
  if (tabulated_) {
    task_hash_.resize(k_);
    for (int t = 0; t < k_; ++t) {
      task_hash_[t] = FnvHashDoubles(
          &exec_table_[static_cast<std::size_t>(t) * pp], pp);
    }
    edge_hash_.resize(std::max(0, k_ - 1));
    for (int e = 0; e < k_ - 1; ++e) {
      std::uint64_t h = FnvHashDoubles(
          &icom_table_[static_cast<std::size_t>(e) * pp], pp);
      edge_hash_[e] = FnvHashDoubles(
          &ecom_table_[static_cast<std::size_t>(e) * pp * pp],
          static_cast<std::size_t>(pp) * pp, h);
    }
  }
}

const double* Evaluator::EComRow(int edge, int sender_procs) const {
  PIPEMAP_CHECK(tabulated_, "EComRow: evaluator is not tabulated");
  PIPEMAP_CHECK(edge >= 0 && edge < k_ - 1, "EComRow: edge out of range");
  PIPEMAP_CHECK(sender_procs >= 1 && sender_procs <= max_procs_,
                "EComRow: sender count out of range");
  const int pp = max_procs_ + 1;
  return &ecom_table_[(static_cast<std::size_t>(edge) * pp + sender_procs) *
                      pp];
}

std::uint64_t Evaluator::TaskCostHash(int task) const {
  PIPEMAP_CHECK(tabulated_, "TaskCostHash: evaluator is not tabulated");
  PIPEMAP_CHECK(task >= 0 && task < k_, "TaskCostHash: task out of range");
  return task_hash_[task];
}

std::uint64_t Evaluator::EdgeCostHash(int edge) const {
  PIPEMAP_CHECK(tabulated_, "EdgeCostHash: evaluator is not tabulated");
  PIPEMAP_CHECK(edge >= 0 && edge < k_ - 1,
                "EdgeCostHash: edge out of range");
  return edge_hash_[edge];
}

int Evaluator::MinProcsUncached(int first, int last) const {
  try {
    return MinProcessors(chain_->costs().ModuleMemory(first, last),
                         node_memory_bytes_);
  } catch (const Infeasible&) {
    return kInfeasibleProcs;
  }
}

double Evaluator::Exec(int task, int procs) const {
  PIPEMAP_CHECK(task >= 0 && task < k_, "Exec: task index out of range");
  PIPEMAP_CHECK(procs >= 1, "Exec: procs must be >= 1");
  if (tabulated_ && procs <= max_procs_) {
    return exec_table_[static_cast<std::size_t>(task) * (max_procs_ + 1) +
                       procs];
  }
  return chain_->costs().Exec(task, procs);
}

double Evaluator::ICom(int edge, int procs) const {
  PIPEMAP_CHECK(edge >= 0 && edge < k_ - 1, "ICom: edge index out of range");
  PIPEMAP_CHECK(procs >= 1, "ICom: procs must be >= 1");
  if (tabulated_ && procs <= max_procs_) {
    return icom_table_[static_cast<std::size_t>(edge) * (max_procs_ + 1) +
                       procs];
  }
  return chain_->costs().ICom(edge, procs);
}

double Evaluator::ECom(int edge, int sender_procs, int receiver_procs) const {
  PIPEMAP_CHECK(edge >= 0 && edge < k_ - 1, "ECom: edge index out of range");
  PIPEMAP_CHECK(sender_procs >= 1 && receiver_procs >= 1,
                "ECom: processor counts must be >= 1");
  if (tabulated_ && sender_procs <= max_procs_ &&
      receiver_procs <= max_procs_) {
    const int pp = max_procs_ + 1;
    return ecom_table_[(static_cast<std::size_t>(edge) * pp + sender_procs) *
                           pp +
                       receiver_procs];
  }
  return chain_->costs().ECom(edge, sender_procs, receiver_procs);
}

double Evaluator::Body(int first, int last, int procs) const {
  PIPEMAP_CHECK(first >= 0 && last < k_ && first <= last,
                "Body: bad task range");
  PIPEMAP_CHECK(procs >= 1, "Body: procs must be >= 1");
  if (tabulated_ && procs <= max_procs_) {
    const int pp = max_procs_ + 1;
    double body = body_prefix_[static_cast<std::size_t>(last + 1) * pp +
                               procs] -
                  body_prefix_[static_cast<std::size_t>(first) * pp + procs];
    // The prefix difference includes the internal-communication cost of the
    // edge entering `first`, which belongs to the boundary, not the body.
    if (first > 0) {
      body -= icom_table_[static_cast<std::size_t>(first - 1) * pp + procs];
    }
    return body;
  }
  return chain_->costs().ModuleBody(first, last, procs);
}

int Evaluator::MinProcs(int first, int last) const {
  PIPEMAP_CHECK(first >= 0 && last < k_ && first <= last,
                "MinProcs: bad task range");
  return min_procs_[static_cast<std::size_t>(first) * k_ + last];
}

bool Evaluator::Replicable(int first, int last) const {
  PIPEMAP_CHECK(first >= 0 && last < k_ && first <= last,
                "Replicable: bad task range");
  return replicable_[static_cast<std::size_t>(first) * k_ + last] != 0;
}

ModuleConfig Evaluator::ConfigureModule(int first, int last, int proc_budget,
                                        ReplicationPolicy policy) const {
  const int min_p = MinProcs(first, last);
  if (proc_budget < min_p || proc_budget < 1) return {};
  if (policy == ReplicationPolicy::kNone || !Replicable(first, last)) {
    return {1, proc_budget, true};
  }
  if (policy == ReplicationPolicy::kMaximal) {
    const int r = proc_budget / min_p;
    return {r, proc_budget / r, true};
  }
  // kSearch: pick r minimizing the effective body time.
  ModuleConfig best;
  double best_score = std::numeric_limits<double>::infinity();
  const int max_r = proc_budget / min_p;
  for (int r = 1; r <= max_r; ++r) {
    const int procs = proc_budget / r;
    const double score = Body(first, last, procs) / r;
    if (score < best_score) {
      best_score = score;
      best = {r, procs, true};
    }
  }
  return best;
}

double Evaluator::InstanceResponse(int first, int last, int procs,
                                   int prev_procs, int next_procs) const {
  double response = Body(first, last, procs);
  if (prev_procs > 0) {
    response += ECom(first - 1, prev_procs, procs);
  }
  if (next_procs > 0) {
    response += ECom(last, procs, next_procs);
  }
  return response;
}

double Evaluator::EffectiveResponse(const Mapping& mapping,
                                    int module_index) const {
  PIPEMAP_CHECK(module_index >= 0 && module_index < mapping.num_modules(),
                "EffectiveResponse: module index out of range");
  const ModuleAssignment& m = mapping.modules[module_index];
  const int prev =
      module_index > 0 ? mapping.modules[module_index - 1].procs_per_instance
                       : 0;
  const int next = module_index + 1 < mapping.num_modules()
                       ? mapping.modules[module_index + 1].procs_per_instance
                       : 0;
  const double response = InstanceResponse(m.first_task, m.last_task,
                                           m.procs_per_instance, prev, next);
  return response / m.replicas;
}

double Evaluator::BottleneckResponse(const Mapping& mapping) const {
  PIPEMAP_CHECK(mapping.IsValidFor(k_),
                "BottleneckResponse: mapping invalid for chain");
  double worst = 0.0;
  for (int i = 0; i < mapping.num_modules(); ++i) {
    worst = std::max(worst, EffectiveResponse(mapping, i));
  }
  return worst;
}

double Evaluator::Throughput(const Mapping& mapping) const {
  const double bottleneck = BottleneckResponse(mapping);
  PIPEMAP_CHECK(bottleneck > 0.0, "Throughput: bottleneck must be positive");
  return 1.0 / bottleneck;
}

double Evaluator::Latency(const Mapping& mapping) const {
  PIPEMAP_CHECK(mapping.IsValidFor(k_), "Latency: mapping invalid for chain");
  double latency = 0.0;
  for (int i = 0; i < mapping.num_modules(); ++i) {
    const ModuleAssignment& m = mapping.modules[i];
    latency += Body(m.first_task, m.last_task, m.procs_per_instance);
    if (i + 1 < mapping.num_modules()) {
      latency += ECom(m.last_task, m.procs_per_instance,
                      mapping.modules[i + 1].procs_per_instance);
    }
  }
  return latency;
}

}  // namespace pipemap
