// Shared mapper types: options, results, and the constrained module
// configuration rule that all mappers (dynamic programming, greedy, brute
// force) must share so their optimality claims are comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "core/mapping.h"
#include "core/warm_start.h"
#include "support/deadline.h"

namespace pipemap {

/// Predicate over per-instance processor counts; models machine/compiler
/// constraints such as the Fx compiler's rectangular-subarray requirement
/// (Section 6.1). Null means every count is allowed.
using ProcPredicate = std::function<bool(int)>;

/// Options shared by the mapping algorithms.
struct MapperOptions {
  ReplicationPolicy replication = ReplicationPolicy::kMaximal;
  bool allow_clustering = true;
  ProcPredicate proc_feasible;
  /// Upper bound on dynamic-programming table memory; exceeding it throws
  /// pipemap::ResourceLimit instead of silently thrashing.
  std::size_t max_table_bytes = std::size_t{3} << 30;
  /// Worker threads for the parallel mappers: <= 0 means hardware
  /// concurrency, 1 forces the bit-exact serial path. Every thread count
  /// produces identical mappings and objective values; `proc_feasible`
  /// must be safe to call concurrently when this is not 1.
  int num_threads = 0;
  /// Forces metrics collection (support/metrics.h) on for the duration of
  /// the mapping run, restoring the previous process-wide setting after.
  /// With this false (the default) collection follows the process-wide
  /// switch, which the CLI's --metrics/--trace flags control. Collection
  /// never changes the returned mapping or objective.
  bool observe = false;
  /// Optional warm-start state shared across adjacent solves (frontier
  /// and budget sweeps). Null runs cold. Purely an accelerator: the DP
  /// returns identical mappings warm or cold (see core/warm_start.h for
  /// the sharing contract). Never part of the cache fingerprint.
  std::shared_ptr<WarmStartState> warm;
  /// Capture and reuse whole DP sweep states through `warm` for
  /// incremental re-solves (core/dp_sweep_state.h): a solve whose chain
  /// prefix and cost content are unchanged reuses the completed prefix
  /// stages and re-sweeps only the dirty suffix. Requires `warm`; ignored
  /// without it. Capture disables dominance pruning on non-terminal stages
  /// (so the kept tables are complete) and retains the stage tables
  /// between solves — a memory-for-latency trade the caller opts into.
  /// Like `warm`, purely an accelerator: results are byte-identical to a
  /// cold solve, and the flag is never part of the cache fingerprint.
  bool incremental = false;
  /// Optional cooperative deadline polled by solver inner loops. When it
  /// expires mid-solve the mapper stops refining and returns its best
  /// incumbent with MapResult::timed_out set (or throws ResourceLimit if no
  /// feasible incumbent exists yet). Null means solve to completion. Like
  /// `warm`, never part of the cache fingerprint: the engine refuses to
  /// cache timed-out results, so a deadline cannot change what a cacheable
  /// complete answer looks like.
  std::shared_ptr<const Deadline> deadline;
};

/// Result of a mapping run.
struct MapResult {
  Mapping mapping;
  /// Predicted throughput of `mapping` (data sets per second).
  double throughput = 0.0;
  /// Inner-loop iterations performed; exposes the O(P^4 k^2) vs O(P k)
  /// complexity contrast empirically.
  std::uint64_t work = 0;
  /// DP cells skipped by dominance pruning (0 for non-DP mappers). Like
  /// `work`, deterministic for a fixed thread count but may vary between
  /// thread counts; the mapping and throughput never do.
  std::uint64_t pruned_cells = 0;
  /// True when MapperOptions::deadline expired mid-solve and `mapping` is
  /// the best incumbent rather than a certified optimum.
  bool timed_out = false;
  /// Incremental provenance (MapperOptions::incremental, DP only): whether
  /// a captured sweep's clean prefix was reused, and the first stage index
  /// re-swept (-1 when the whole sweep ran). Informational — incremental
  /// results are byte-identical to cold ones.
  bool used_sweep_prefix = false;
  int resweep_from = -1;
  /// Per-worker share of `work` across the DP's parallel stage sweeps
  /// (empty for non-DP mappers); exposes partition imbalance.
  std::vector<std::uint64_t> worker_work;
};

/// A clustering: contiguous task ranges [first, last], in chain order.
using Clustering = std::vector<std::pair<int, int>>;

/// Clustering with every task in its own module.
Clustering SingletonClustering(int num_tasks);

/// Configures module [first, last] with `budget` processors under `policy`,
/// then lowers the per-instance count to the largest value satisfying
/// `feasible` (if given). Returns an invalid config when the budget cannot
/// satisfy the memory minimum or no feasible instance size exists.
ModuleConfig ConfigureConstrained(const Evaluator& eval, int first, int last,
                                  int budget, ReplicationPolicy policy,
                                  const ProcPredicate& feasible);

/// Builds the Mapping induced by a clustering and per-module processor
/// budgets; nullopt if any module cannot be configured.
std::optional<Mapping> BuildMapping(const Evaluator& eval,
                                    const Clustering& clustering,
                                    const std::vector<int>& budgets,
                                    ReplicationPolicy policy,
                                    const ProcPredicate& feasible);

}  // namespace pipemap
