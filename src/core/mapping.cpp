#include "core/mapping.h"

#include <sstream>

#include "support/error.h"

namespace pipemap {

int Mapping::TotalProcs() const {
  int total = 0;
  for (const ModuleAssignment& m : modules) total += m.total_procs();
  return total;
}

bool Mapping::IsValidFor(int num_tasks) const {
  if (modules.empty()) return false;
  int expected_first = 0;
  for (const ModuleAssignment& m : modules) {
    if (m.first_task != expected_first) return false;
    if (m.last_task < m.first_task) return false;
    if (m.replicas < 1 || m.procs_per_instance < 1) return false;
    expected_first = m.last_task + 1;
  }
  return expected_first == num_tasks;
}

int Mapping::ModuleOf(int task) const {
  for (int i = 0; i < num_modules(); ++i) {
    if (task >= modules[i].first_task && task <= modules[i].last_task) {
      return i;
    }
  }
  throw InvalidArgument("Mapping::ModuleOf: task not covered by mapping");
}

std::string Mapping::ToString(const TaskChain& chain) const {
  std::ostringstream os;
  for (int i = 0; i < num_modules(); ++i) {
    if (i > 0) os << " | ";
    const ModuleAssignment& m = modules[i];
    os << "[";
    for (int t = m.first_task; t <= m.last_task; ++t) {
      if (t > m.first_task) os << " ";
      os << chain.task(t).name;
    }
    os << "]x" << m.replicas << " @" << m.procs_per_instance << "p";
  }
  os << "  (" << TotalProcs() << " procs)";
  return os.str();
}

void ValidateMapping(const Mapping& mapping, const TaskChain& chain,
                     int max_procs) {
  PIPEMAP_CHECK(mapping.IsValidFor(chain.size()),
                "mapping does not partition the chain");
  PIPEMAP_CHECK(mapping.TotalProcs() <= max_procs,
                "mapping uses more processors than available");
  for (const ModuleAssignment& m : mapping.modules) {
    if (m.replicas > 1) {
      PIPEMAP_CHECK(chain.RangeReplicable(m.first_task, m.last_task),
                    "replicated module contains a non-replicable task");
    }
  }
}

}  // namespace pipemap
