#include "core/latency_mapper.h"

#include <algorithm>

#include "core/dp_engine.h"
#include "core/dp_mapper.h"
#include "support/error.h"

namespace pipemap {

LatencyMapper::LatencyMapper(MapperOptions options)
    : options_(std::move(options)) {}

namespace {

LatencyResult ToResult(const Evaluator& eval, detail::DpSolution solution) {
  LatencyResult result;
  result.latency = eval.Latency(solution.mapping);
  result.throughput = eval.Throughput(solution.mapping);
  result.mapping = std::move(solution.mapping);
  result.work = solution.work;
  result.timed_out = solution.timed_out;
  return result;
}

}  // namespace

LatencyResult LatencyMapper::MinLatency(const Evaluator& eval,
                                        int total_procs) const {
  detail::DpProblem problem;
  problem.eval = &eval;
  problem.total_procs = total_procs;
  problem.options = options_;
  problem.objective = detail::DpObjective::kPathSum;
  problem.config_rule = detail::DpConfigRule::kLatencyBody;
  return ToResult(eval, detail::RunChainDp(problem));
}

LatencyResult LatencyMapper::MinLatencyWithThroughput(
    const Evaluator& eval, int total_procs, double min_throughput) const {
  PIPEMAP_CHECK(min_throughput > 0.0,
                "MinLatencyWithThroughput: floor must be positive");
  detail::DpProblem problem;
  problem.eval = &eval;
  problem.total_procs = total_procs;
  problem.options = options_;
  problem.objective = detail::DpObjective::kPathSum;
  problem.max_effective_response = 1.0 / min_throughput;

  // Two configuration families: latency-greedy configurations (loose
  // floors) and the paper's replication-policy configurations (tight
  // floors, where meeting the cap dominates the design). Each DP is exact
  // within its family; take the better feasible result.
  LatencyResult best;
  bool found = false;
  bool any_timed_out = false;
  std::uint64_t total_work = 0;
  for (const detail::DpConfigRule rule :
       {detail::DpConfigRule::kLatencyBody, detail::DpConfigRule::kPolicy}) {
    problem.config_rule = rule;
    try {
      LatencyResult candidate = ToResult(eval, detail::RunChainDp(problem));
      total_work += candidate.work;
      any_timed_out = any_timed_out || candidate.timed_out;
      if (!found || candidate.latency < best.latency) {
        best = std::move(candidate);
      }
      found = true;
    } catch (const Infeasible&) {
      // Try the other family.
    }
  }
  if (!found) {
    throw Infeasible(
        "MinLatencyWithThroughput: throughput floor unreachable");
  }
  best.work = total_work;
  // A timeout in either family means the combined answer is uncertified,
  // whichever family produced the returned mapping.
  best.timed_out = any_timed_out;
  return best;
}

ProcCountResult MinProcessorsForThroughput(const Evaluator& eval,
                                           int max_procs,
                                           double target_throughput,
                                           const MapperOptions& options) {
  PIPEMAP_CHECK(max_procs >= 1,
                "MinProcessorsForThroughput: need at least one processor");
  PIPEMAP_CHECK(target_throughput > 0.0,
                "MinProcessorsForThroughput: target must be positive");
  const DpMapper mapper(options);

  // Feasibility check at the top of the range first; the memory minima may
  // also make small budgets outright unmappable, which the binary search
  // treats the same as "too slow".
  MapResult best = mapper.Map(eval, max_procs);
  if (best.throughput < target_throughput) {
    throw Infeasible(
        "MinProcessorsForThroughput: target unreachable on max_procs");
  }

  auto reaches = [&](int procs, MapResult* out) {
    try {
      MapResult r = mapper.Map(eval, procs);
      const bool ok = r.throughput >= target_throughput;
      if (ok) *out = std::move(r);
      return ok;
    } catch (const Infeasible&) {
      return false;
    }
  };

  int lo = 1, hi = max_procs;  // invariant: hi reaches the target
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    MapResult candidate;
    if (reaches(mid, &candidate)) {
      hi = mid;
      best = std::move(candidate);
    } else {
      lo = mid + 1;
    }
  }
  return ProcCountResult{hi, std::move(best.mapping), best.throughput};
}

std::vector<FrontierPoint> LatencyThroughputFrontier(
    const Evaluator& eval, int total_procs, int num_points,
    const MapperOptions& options) {
  PIPEMAP_CHECK(num_points >= 2,
                "LatencyThroughputFrontier: need at least two points");
  const LatencyMapper latency_mapper(options);
  const DpMapper throughput_mapper(options);

  const LatencyResult fastest_path =
      latency_mapper.MinLatency(eval, total_procs);
  const MapResult max_throughput = throughput_mapper.Map(eval, total_procs);

  std::vector<FrontierPoint> points;
  const double lo = fastest_path.throughput;
  const double hi = max_throughput.throughput;
  for (int i = 0; i < num_points; ++i) {
    const double floor =
        lo + (hi - lo) * static_cast<double>(i) / (num_points - 1);
    try {
      LatencyResult r = latency_mapper.MinLatencyWithThroughput(
          eval, total_procs, std::max(floor, lo));
      points.push_back(
          FrontierPoint{r.throughput, r.latency, std::move(r.mapping)});
    } catch (const Infeasible&) {
      // Floating-point edge at the extreme floor: fall back to the
      // throughput-optimal mapping.
      points.push_back(FrontierPoint{max_throughput.throughput,
                                     eval.Latency(max_throughput.mapping),
                                     max_throughput.mapping});
    }
  }

  // Pareto-filter: keep points where higher throughput strictly costs
  // latency.
  std::sort(points.begin(), points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.throughput != b.throughput) {
                return a.throughput < b.throughput;
              }
              return a.latency < b.latency;
            });
  std::vector<FrontierPoint> frontier;
  for (FrontierPoint& p : points) {
    while (!frontier.empty() && frontier.back().latency >= p.latency &&
           frontier.back().throughput <= p.throughput) {
      frontier.pop_back();
    }
    if (frontier.empty() || p.throughput > frontier.back().throughput) {
      frontier.push_back(std::move(p));
    }
  }
  return frontier;
}

}  // namespace pipemap
