// Captured DP sweep state for incremental re-solves.
//
// A completed chain-DP sweep leaves behind per-stage value/backpointer
// tables whose contents at stage (j, len) depend only on
//   * tasks 0..j-1 and edges 0..j-1 of the chain's cost model,
//   * the module-range metadata (memory minima, replicability) and the
//     configuration rule / replication policy / feasibility predicate,
//   * the suffix budget bounds suffix_min[0..j+1] that gate seeds, row
//     filters, and writes.
// A re-solve whose chain differs only from some task index onward can
// therefore reuse every stage strictly before the first dirty index and
// re-sweep only the dirty suffix — exactness-preserving, because the
// reused tables are bitwise what the cold solve's prefix sweep would
// produce (capture runs with dominance pruning disabled on non-terminal
// stages, and a pruned-off write can never reach or tie the optimum; see
// dp_engine.cpp).
//
// Dirtiness is detected by content, not identity: FNV-1a hashes of the
// evaluator's tabulated cost rows (exec per task; icom row + ecom block
// per edge) plus direct comparison of the small min-procs/replicable range
// caches. This makes the state reusable across Evaluator instances — the
// engine rebuilds its evaluator per request — as long as the machine size
// and the clean prefix's cost content are unchanged. Only tabulated
// evaluators can be fingerprinted; untabulated ones never capture.
//
// Ownership: a DpSweepState hangs off WarmStartState::sweep and is checked
// out exclusively by a solve (the solve detaches it, mutates the stage
// tables in place during the incremental re-sweep, and re-attaches on
// success). A solve that aborts — deadline expiry, infeasibility — leaves
// the state detached, so a corrupt half-rebuilt grid is never reused.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dp_engine.h"
#include "support/aligned.h"

namespace pipemap::detail {

/// One DP stage as flat structure-of-arrays tables. States are indexed by
/// ((pu * (cap+1) + b) * slot_pitch + slot): `pu` processors used, `b` the
/// last module's budget, `slot` the rank of the previous module's
/// per-instance processor count in the solve's slot universe (slot 0 is
/// the no-predecessor marker). slot_pitch is padded to whole cache lines
/// so workers sweeping different rows never share a line, and so the
/// vector kernels can read full lanes (padding holds +inf).
struct FlatStage {
  AlignedBuffer<double> value;
  AlignedBuffer<std::uint32_t> bp;
  /// Per-(pu, b) cell occupancy range, packed lo | hi << 16: slots in
  /// [lo, hi) have been initialized (written once, or gap-filled with
  /// +inf); lanes outside are uninitialized garbage and must never be
  /// read. hi <= lo means the cell is empty. This is what lets a stage
  /// skip clearing its O(cap^2 * slots) value/bp tables — only this
  /// O(cap^2) array is reset — and lets the per-cell scans touch just the
  /// handful of live lanes instead of the whole slot axis.
  AlignedBuffer<std::uint32_t> slot_range;
  /// row_live[pu] != 0 iff some (pu, b, slot) cell is finite. One cache
  /// line per flag: the flags are written concurrently (relaxed stores of
  /// 1) by workers sweeping different source rows.
  std::vector<CacheLinePadded<std::atomic<char>>> row_live;
  bool allocated = false;
};

struct DpSweepState {
  // Problem key: everything the stage contents depend on besides the cost
  // values themselves (fingerprinted below). `cap` must match exactly —
  // stage extents and the suffix gates depend on it.
  int k = 0;
  int cap = 0;
  int max_len = 0;
  ReplicationPolicy policy = ReplicationPolicy::kMaximal;
  DpConfigRule rule = DpConfigRule::kPolicy;
  double response_cap = 0.0;
  bool has_predicate = false;
  bool path_sum = false;

  // Content fingerprints of the evaluator the sweep was captured against.
  std::vector<std::uint64_t> task_hash;  // k entries: exec row
  std::vector<std::uint64_t> edge_hash;  // k-1: icom row + ecom block
  std::vector<int> min_procs;            // k*k range cache copy
  std::vector<char> replicable;          // k*k range cache copy
  std::vector<long long> suffix_min;     // k+1, from the capture's tables

  // The pp -> slot compression this capture's backpointers use.
  std::vector<int> slot_procs;  // ascending, slot_procs[0] == 0
  int slot_pitch = 0;

  std::vector<FlatStage> stages;  // indexed j * k + (len - 1)
  std::size_t allocated_bytes = 0;
};

}  // namespace pipemap::detail
