#include "core/sensitivity.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace pipemap {
namespace {

const char* KindName(SensitivityEntry::Kind kind) {
  switch (kind) {
    case SensitivityEntry::Kind::kExec:
      return "exec";
    case SensitivityEntry::Kind::kICom:
      return "icom";
    case SensitivityEntry::Kind::kECom:
      return "ecom";
  }
  return "?";
}

}  // namespace

SensitivityReport AnalyzeSensitivity(const Evaluator& eval,
                                     const Mapping& mapping,
                                     double perturbation) {
  PIPEMAP_CHECK(perturbation > 0.0,
                "AnalyzeSensitivity: perturbation must be positive");
  PIPEMAP_CHECK(mapping.IsValidFor(eval.num_tasks()),
                "AnalyzeSensitivity: mapping invalid for chain");
  const int k = eval.num_tasks();
  const int l = mapping.num_modules();

  // Base responses and the bottleneck.
  std::vector<double> response(l);
  int bottleneck = 0;
  for (int m = 0; m < l; ++m) {
    response[m] = eval.EffectiveResponse(mapping, m);
    if (response[m] > response[bottleneck]) bottleneck = m;
  }
  const double base_throughput = 1.0 / response[bottleneck];

  // Per-component contribution to each module's *effective* response.
  // contribution[component][module].
  struct Component {
    SensitivityEntry::Kind kind;
    int index;
    std::vector<double> contribution;
  };
  std::vector<Component> components;

  auto procs_of = [&](int module) {
    return mapping.modules[module].procs_per_instance;
  };
  auto replicas_of = [&](int module) {
    return static_cast<double>(mapping.modules[module].replicas);
  };

  for (int t = 0; t < k; ++t) {
    Component c{SensitivityEntry::Kind::kExec, t, std::vector<double>(l, 0.0)};
    const int m = mapping.ModuleOf(t);
    c.contribution[m] = eval.Exec(t, procs_of(m)) / replicas_of(m);
    components.push_back(std::move(c));
  }
  for (int e = 0; e < k - 1; ++e) {
    const int m_up = mapping.ModuleOf(e);
    const int m_down = mapping.ModuleOf(e + 1);
    if (m_up == m_down) {
      Component c{SensitivityEntry::Kind::kICom, e,
                  std::vector<double>(l, 0.0)};
      c.contribution[m_up] =
          eval.ICom(e, procs_of(m_up)) / replicas_of(m_up);
      components.push_back(std::move(c));
    } else {
      // The rendezvous occupies both sides: the transfer time enters both
      // adjacent modules' responses.
      Component c{SensitivityEntry::Kind::kECom, e,
                  std::vector<double>(l, 0.0)};
      const double cost = eval.ECom(e, procs_of(m_up), procs_of(m_down));
      c.contribution[m_up] = cost / replicas_of(m_up);
      c.contribution[m_down] = cost / replicas_of(m_down);
      components.push_back(std::move(c));
    }
  }

  SensitivityReport report;
  report.base_throughput = base_throughput;
  for (const Component& c : components) {
    // New bottleneck if this component cost grows by `perturbation`.
    double worst = 0.0;
    for (int m = 0; m < l; ++m) {
      worst = std::max(worst, response[m] + perturbation * c.contribution[m]);
    }
    const double new_throughput = 1.0 / worst;
    SensitivityEntry entry;
    entry.kind = c.kind;
    entry.index = c.index;
    entry.elasticity =
        (base_throughput - new_throughput) / (base_throughput * perturbation);
    entry.on_bottleneck = c.contribution[bottleneck] > 0.0;
    report.entries.push_back(entry);
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.elasticity > b.elasticity;
            });
  return report;
}

std::string SensitivityReport::Summary(const TaskChain& chain,
                                       std::size_t top_n) const {
  std::ostringstream os;
  os << "throughput elasticity per cost component (top " << top_n << "):\n";
  std::size_t shown = 0;
  for (const SensitivityEntry& e : entries) {
    if (shown++ >= top_n) break;
    os << "  " << KindName(e.kind) << " ";
    if (e.kind == SensitivityEntry::Kind::kExec) {
      os << chain.task(e.index).name;
    } else {
      os << chain.task(e.index).name << "->" << chain.task(e.index + 1).name;
    }
    os << ": " << e.elasticity;
    if (e.on_bottleneck) os << " (bottleneck)";
    os << "\n";
  }
  return os.str();
}

}  // namespace pipemap
