// Mapping explanation: the quantitative story behind a mapping, in the
// style of the paper's Section 6.3 walkthrough ("rowffts and hist use the
// same distributions, hence merging them eliminates the data transfer
// cost... to satisfy the memory requirements, each instance must be
// assigned at least 3 and 4 processors").
//
// For each module: the response-time breakdown (incoming transfer, body,
// outgoing transfer), the replication state and its memory-imposed limit,
// the predicted utilization (response relative to the pipeline period),
// and how far the module sits from the bottleneck.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/mapping.h"

namespace pipemap {

struct ModuleExplanation {
  int module = 0;
  int first_task = 0;
  int last_task = 0;
  int replicas = 1;
  int procs = 1;
  /// Memory-imposed minimum processors per instance.
  int min_procs = 1;
  /// Maximum replicas the module's total processors would allow.
  int max_replicas = 1;
  bool replicable = true;

  double in_com = 0.0;
  double body = 0.0;
  double out_com = 0.0;
  double response = 0.0;            // in + body + out
  double effective_response = 0.0;  // response / replicas
  /// effective_response / bottleneck response; 1.0 = this is the
  /// bottleneck, lower values = headroom (predicted utilization in steady
  /// state).
  double utilization = 0.0;
};

struct MappingExplanation {
  std::vector<ModuleExplanation> modules;
  int bottleneck = 0;
  double throughput = 0.0;
  double latency = 0.0;
  int procs_used = 0;

  /// Multi-line report naming tasks via `chain`.
  std::string Render(const TaskChain& chain) const;
};

/// Explains `mapping` under `eval`'s cost model.
MappingExplanation ExplainMapping(const Evaluator& eval,
                                  const Mapping& mapping);

}  // namespace pipemap
