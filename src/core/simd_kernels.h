// Vectorized inner-loop kernels for the evaluator tabulation and the DP
// stage sweep, with runtime AVX2 dispatch and a portable scalar fallback.
//
// Bit-identity contract: every kernel uses only IEEE-exact operations
// (add, sub, mul, div, max, compare) in the same association order as the
// scalar reference code, so the AVX2 and scalar paths produce bitwise
// identical outputs (simd_kernels_test pins this lane by lane). The TU is
// compiled with -ffp-contract=off so the compiler cannot fuse a*b+c into
// an FMA on one path but not the other. Inputs are assumed non-NaN (cost
// functions return times); +inf propagates harmlessly — an infinite
// candidate never wins a strict-< minimum update.
#pragma once

#include <cstdint>

namespace pipemap::simd {

/// True when the CPU supports AVX2 (probed once per process).
bool HasAvx2();

/// Name of the dispatched instruction set ("avx2" or "scalar"), for bench
/// and report provenance.
const char* ActiveIsa();

/// out[p] = c[0] + c[1]/p + c[2]*p for p in [1, max_p] (PolyScalarCost::
/// Eval's exact expression order). out[0] is left untouched.
void PolyScalarRow(const double c[3], double* out, int max_p);

/// out[pr] = c[0] + c[1]/ps + c[2]/pr + c[3]*ps + c[4]*pr for pr in
/// [1, max_pr] at fixed sender count ps (PolyPairCost::Eval's exact
/// expression order). out[0] is left untouched.
void PolyPairRow(const double c[5], int sender_procs, double* out,
                 int max_pr);

/// Minimum over x[0..n). n may include +inf padding lanes (the caller
/// rounds flat-table rows up to a full cache line); returns +inf when all
/// entries are +inf or n == 0.
double RowMin(const double* x, int n);

/// The DP transition kernel: folds one source state into the per-target
/// running minima. For each target t in [0, m):
///
///   resp = (c_in + o[t]) / replicas          // module effective response
///   cand = path_sum ? d_in + o[t]            // latency aggregation
///                   : max(resp, v)           // bottleneck aggregation
///   if (resp > response_cap) cand = +inf     // == the serial `continue`
///   if (cand < best[t]) { best[t] = cand; src[t] = src_index; }
///
/// `v` is the source state's value, `c_in` its in_com + body, `d_in` its
/// value + body; `o[t]` the outgoing external-communication cost of target
/// t. The strict < keeps the first (lowest-index) source achieving each
/// minimum, reproducing the serial sweep's pp-ascending tie rule when
/// sources are folded in ascending order. `src` stores indices as doubles
/// so one compare mask blends value and index alike; indices are small
/// integers, exactly representable.
///
/// `o`, `best`, and `src` must be readable/writable for m rounded up to a
/// multiple of 4 (both the scalar and AVX2 paths process the padded lane
/// count, so they stay bitwise interchangeable lane for lane). Padding o
/// lanes may hold +inf or any finite value: lanes at index >= m are
/// scratch — the caller must consume only best/src[0..m).
void UpdateBestOverTargets(double v, double c_in, double d_in,
                           double src_index, const double* o, int m,
                           double replicas, double response_cap,
                           bool path_sum, double* best, double* src);

}  // namespace pipemap::simd
