#include "core/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace pipemap {
namespace {

/// Records one check into a report; `description` is only materialized for
/// the first violation (it calls the callback lazily).
template <typename DescribeFn>
void Record(ConditionReport& report, bool ok, DescribeFn&& describe) {
  ++report.checks;
  if (!ok) {
    ++report.violations;
    report.holds = false;
    if (report.first_violation.empty()) {
      report.first_violation = describe();
    }
  }
}

std::string Describe(const char* what, int index, int p, double before,
                     double after) {
  std::ostringstream os;
  os << what << "[" << index << "] at p=" << p << ": " << before << " -> "
     << after;
  return os.str();
}

}  // namespace

std::string ChainDiagnostics::Summary() const {
  std::ostringstream os;
  auto line = [&](const char* name, const ConditionReport& r,
                  const char* consequence) {
    os << "  " << name << ": " << (r.holds ? "holds" : "violated") << " ("
       << r.violations << "/" << r.checks << " checks failed)";
    if (!r.holds) {
      os << "\n    e.g. " << r.first_violation << "\n    -> " << consequence;
    }
    os << "\n";
  };
  line("communication monotone (Thm 1)", comm_monotone,
       "bottleneck-only greedy loses its optimality guarantee");
  line("cost functions convex (Thm 2.1)", convex,
       "greedy may over-allocate; enable limited backtracking");
  line("computation dominates (Thm 2.2)", computation_dominates,
       "greedy's +/-2 bound does not apply");
  line("non-superlinear costs (Sec 3.2)", non_superlinear,
       "maximal replication may be suboptimal; consider kSearch");
  return os.str();
}

ChainDiagnostics DiagnoseChain(const Evaluator& eval) {
  ChainDiagnostics d;
  const int k = eval.num_tasks();
  const int P = eval.max_procs();
  const int pair_stride = std::max(1, P / 16);

  // Communication monotonicity and convexity; execution convexity and
  // non-superlinearity.
  for (int e = 0; e < k - 1; ++e) {
    for (int p = 1; p + 1 <= P; ++p) {
      const double a = eval.ICom(e, p);
      const double b = eval.ICom(e, p + 1);
      Record(d.comm_monotone, b >= a - 1e-12,
             [&] { return Describe("icom", e, p, a, b); });
      if (p + 2 <= P) {
        const double c = eval.ICom(e, p + 2);
        Record(d.convex, (c - b) >= (b - a) - 1e-12,
               [&] { return Describe("icom convexity", e, p, b - a, c - b); });
      }
    }
    for (int ps = 1; ps <= P; ps += pair_stride) {
      for (int pr = 1; pr <= P; pr += pair_stride) {
        const double base = eval.ECom(e, ps, pr);
        if (ps + 1 <= P) {
          const double up = eval.ECom(e, ps + 1, pr);
          Record(d.comm_monotone, up >= base - 1e-12,
                 [&] { return Describe("ecom(sender)", e, ps, base, up); });
          if (ps + 2 <= P) {
            const double up2 = eval.ECom(e, ps + 2, pr);
            Record(d.convex, (up2 - up) >= (up - base) - 1e-12, [&] {
              return Describe("ecom convexity(sender)", e, ps, up - base,
                              up2 - up);
            });
          }
        }
        if (pr + 1 <= P) {
          const double up = eval.ECom(e, ps, pr + 1);
          Record(d.comm_monotone, up >= base - 1e-12,
                 [&] { return Describe("ecom(receiver)", e, pr, base, up); });
        }
      }
    }
  }

  for (int t = 0; t < k; ++t) {
    for (int p = 1; p + 1 <= P; ++p) {
      const double a = eval.Exec(t, p);
      const double b = eval.Exec(t, p + 1);
      Record(d.non_superlinear,
             b >= a * p / (p + 1.0) - 1e-12,
             [&] { return Describe("exec superlinear", t, p, a, b); });
      if (p + 2 <= P) {
        const double c = eval.Exec(t, p + 2);
        Record(d.convex, (c - b) >= (b - a) - 1e-12,
               [&] { return Describe("exec convexity", t, p, b - a, c - b); });
      }

      // Theorem 2 condition 2: delta (computation improvement) must exceed
      // 4 * delta_c (best communication improvement from adding a
      // processor to this task or a neighbour). Probe at matched counts.
      const double delta = a - b;
      double delta_c = 0.0;
      if (t > 0) {
        delta_c = std::max(
            delta_c, eval.ECom(t - 1, p, p) - eval.ECom(t - 1, p, p + 1));
        delta_c = std::max(
            delta_c, eval.ECom(t - 1, p, p) - eval.ECom(t - 1, p + 1, p));
      }
      if (t < k - 1) {
        delta_c = std::max(
            delta_c, eval.ECom(t, p, p) - eval.ECom(t, p, p + 1));
        delta_c = std::max(
            delta_c, eval.ECom(t, p, p) - eval.ECom(t, p + 1, p));
      }
      Record(d.computation_dominates, delta > 4.0 * delta_c - 1e-12, [&] {
        std::ostringstream os;
        os << "task " << t << " at p=" << p << ": delta=" << delta
           << " <= 4*delta_c=" << 4.0 * delta_c;
        return os.str();
      });
    }
  }

  // Communication non-superlinearity (Section 3.2 covers communication
  // functions as well).
  for (int e = 0; e < k - 1; ++e) {
    for (int p = 1; p + 1 <= P; ++p) {
      const double a = eval.ICom(e, p);
      const double b = eval.ICom(e, p + 1);
      Record(d.non_superlinear, b >= a * p / (p + 1.0) - 1e-12,
             [&] { return Describe("icom superlinear", e, p, a, b); });
    }
  }

  return d;
}

}  // namespace pipemap
