#include "core/mapper.h"

#include <limits>

#include "support/error.h"

namespace pipemap {

Clustering SingletonClustering(int num_tasks) {
  Clustering clustering;
  clustering.reserve(num_tasks);
  for (int t = 0; t < num_tasks; ++t) clustering.emplace_back(t, t);
  return clustering;
}

ModuleConfig ConfigureConstrained(const Evaluator& eval, int first, int last,
                                  int budget, ReplicationPolicy policy,
                                  const ProcPredicate& feasible) {
  if (!feasible) return eval.ConfigureModule(first, last, budget, policy);

  const int min_p = eval.MinProcs(first, last);
  if (budget < min_p || budget < 1) return {};

  // Largest feasible instance size in [min_p, budget / r], or 0.
  auto feasible_procs = [&](int replicas) {
    for (int p = budget / replicas; p >= min_p; --p) {
      if (feasible(p)) return p;
    }
    return 0;
  };

  const bool may_replicate = policy != ReplicationPolicy::kNone &&
                             eval.Replicable(first, last) &&
                             min_p < kInfeasibleProcs;
  const int max_r = may_replicate ? budget / min_p : 1;

  if (policy == ReplicationPolicy::kSearch) {
    ModuleConfig best;
    double best_score = std::numeric_limits<double>::infinity();
    for (int r = 1; r <= max_r; ++r) {
      const int procs = feasible_procs(r);
      if (procs == 0) continue;
      const double score = eval.Body(first, last, procs) / r;
      if (score < best_score) {
        best_score = score;
        best = {r, procs, true};
      }
    }
    return best;
  }

  // kMaximal (and kNone, where max_r == 1): prefer the highest replica
  // count whose per-instance share admits a feasible rectangle.
  for (int r = max_r; r >= 1; --r) {
    const int procs = feasible_procs(r);
    if (procs != 0) return {r, procs, true};
  }
  return {};
}

std::optional<Mapping> BuildMapping(const Evaluator& eval,
                                    const Clustering& clustering,
                                    const std::vector<int>& budgets,
                                    ReplicationPolicy policy,
                                    const ProcPredicate& feasible) {
  PIPEMAP_CHECK(clustering.size() == budgets.size(),
                "BuildMapping: clustering/budget size mismatch");
  Mapping mapping;
  mapping.modules.reserve(clustering.size());
  for (std::size_t i = 0; i < clustering.size(); ++i) {
    const auto [first, last] = clustering[i];
    const ModuleConfig cfg =
        ConfigureConstrained(eval, first, last, budgets[i], policy, feasible);
    if (!cfg.valid) return std::nullopt;
    mapping.modules.push_back(
        ModuleAssignment{first, last, cfg.replicas, cfg.procs});
  }
  return mapping;
}

}  // namespace pipemap
