// Internal dynamic-programming engine shared by the throughput mapper
// (paper Section 3) and the latency mapper (the companion optimization of
// Vondran's thesis [14], which the paper cites as the broader
// latency/throughput/processors problem).
//
// The engine explores the same state space either way — (end task of the
// last module, module length, processors used, module budget, previous
// module's instance processors) — and differs only in how a completed
// module's cost is aggregated:
//   * kBottleneck: value = max over modules of the effective response
//     (in + body + out) / r — maximizing throughput = minimizing this;
//   * kPathSum: value = sum over the pipeline of body + outgoing transfer
//     — the time one data set takes to traverse the chain (latency).
//
// An optional per-module cap on the effective response turns the path-sum
// objective into "minimize latency subject to throughput >= 1/cap": the
// throughput constraint decomposes into a local test on each module, which
// is what makes the joint problem solvable by the same DP.
#pragma once

#include <limits>
#include <vector>

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap::detail {

enum class DpObjective {
  kBottleneck,  // minimize max_i (f_i / r_i)  (throughput)
  kPathSum,     // minimize sum of bodies + boundary transfers (latency)
};

/// How a module budget is turned into a (replicas, procs) configuration.
enum class DpConfigRule {
  /// MapperOptions::replication via ConfigureConstrained — the paper's
  /// rule; right for the bottleneck objective.
  kPolicy,
  /// Per budget, the configuration minimizing the module body time whose
  /// body-only effective response fits the cap — right for the path-sum
  /// objective at loose throughput floors. (See LatencyConfig.)
  kLatencyBody,
};

struct DpProblem {
  const Evaluator* eval = nullptr;
  int total_procs = 0;
  MapperOptions options;
  DpObjective objective = DpObjective::kBottleneck;
  DpConfigRule config_rule = DpConfigRule::kPolicy;
  /// Per-module bound on the effective response f_i / r_i; modules that
  /// exceed it are pruned. Infinity = unconstrained.
  double max_effective_response = std::numeric_limits<double>::infinity();
};

/// Module configuration rule for the path-sum objective: for each budget,
/// pick the replica count minimizing the module body time (the latency
/// contribution) among those whose body-only effective response fits under
/// `response_cap`. The transition still enforces the full cap including
/// boundary communication. With an infinite cap this degenerates to the
/// minimum-body (usually replica-free) configuration.
ModuleConfig LatencyConfig(const Evaluator& eval, int first, int last,
                           int budget, double response_cap,
                           const ProcPredicate& feasible);

/// Pre-tabulated per-module-range data the DP computes before its sweep:
/// the configuration for every (first, last) range and budget, the
/// smallest usable budget per range, and the minimum total budget needed
/// for every chain suffix. The tables depend only on the key fields below
/// — notably not on the processor budget of an individual solve (budgets
/// are tabulated up to `cap`, and any solve with total_procs <= cap reads
/// a prefix) — which makes them the reusable half of a warm start.
///
/// Configurations are stored structure-of-arrays (parallel replicas /
/// procs / valid arrays indexed by range * budget_stride + budget) so the
/// DP's budget loops scan contiguous memory instead of hopping across
/// 12-byte structs.
struct DpRangeTables {
  // Key: everything the table contents depend on. `response_cap` only
  // shapes configurations under DpConfigRule::kLatencyBody; it is stored
  // unconditionally and compared only for that rule. The feasibility
  // predicate cannot be keyed (std::function); the WarmStartState sharing
  // contract covers it, and `has_predicate` at least catches the
  // with/without mismatch.
  const Evaluator* eval = nullptr;
  int cap = 0;
  int max_len = 0;
  ReplicationPolicy policy = ReplicationPolicy::kMaximal;
  DpConfigRule rule = DpConfigRule::kPolicy;
  double response_cap = std::numeric_limits<double>::infinity();
  bool has_predicate = false;

  /// Budget axis pitch of the flat configuration arrays (cap + 1).
  int budget_stride = 0;
  /// Flat per-(range, budget) configurations at
  /// (first * k + last) * budget_stride + budget; ranges longer than
  /// max_len hold invalid entries. cfg_procs is 0 when invalid.
  std::vector<int> cfg_replicas;
  std::vector<int> cfg_procs;
  std::vector<char> cfg_valid;
  /// Smallest budget with a valid configuration per range
  /// (kInfeasibleProcs when none exists within cap).
  std::vector<int> min_budget;
  /// Minimum total budget to map tasks t..k-1 (index k holds 0).
  std::vector<long long> suffix_min;

  ModuleConfig Config(std::size_t range_index, int budget) const {
    const std::size_t i =
        range_index * static_cast<std::size_t>(budget_stride) + budget;
    return ModuleConfig{cfg_replicas[i], cfg_procs[i], cfg_valid[i] != 0};
  }
};

struct DpSolution {
  Mapping mapping;
  /// The aggregated objective value (bottleneck response or path sum).
  double objective_value = 0.0;
  std::uint64_t work = 0;
  /// (pu, budget) cells skipped by dominance pruning: their optimistic
  /// bound could not beat the best known mapping. Deterministic for a
  /// given thread count; may differ between thread counts (the mapping
  /// and objective never do).
  std::uint64_t pruned_cells = 0;
  /// Warm-start provenance: whether the solve reused the range tables
  /// and whether the caller's incumbent tightened the pruning threshold.
  /// Neither affects the returned mapping or objective.
  bool reused_tables = false;
  bool seeded_incumbent = false;
  /// Incremental provenance (MapperOptions::incremental): whether a
  /// captured sweep's clean prefix was reused, and the first stage index
  /// that was actually re-swept (-1 when the whole sweep ran). Purely
  /// informational — incremental results are byte-identical to cold ones.
  bool used_sweep_prefix = false;
  int resweep_from = -1;
  /// Per-worker share of `work` across the parallel stage sweeps (index =
  /// worker id, size = resolved thread count; sums to `work`). Exposes
  /// partition imbalance for the scaling bench's diagnostics.
  std::vector<std::uint64_t> worker_work;
  /// True when MapperOptions::deadline expired mid-sweep: `mapping` is the
  /// best incumbent found up to that point (a heuristic seed, a warm-start
  /// carry-over, or the best terminal of the completed stages), not a
  /// certified optimum. Timed-out results are valid mappings but are not
  /// deterministic across runs — where the clock fires is not.
  bool timed_out = false;
};

/// Runs the DP. Throws pipemap::Infeasible when no mapping satisfies the
/// constraints and pipemap::ResourceLimit when the table would exceed
/// options.max_table_bytes — or when options.deadline expires before any
/// feasible incumbent is known. Range-table tabulation always runs to
/// completion (it is the cheap, reusable half of the solve); the deadline
/// interrupts the stage sweeps, which dominate the O(P^4 k^2) cost.
DpSolution RunChainDp(const DpProblem& problem);

}  // namespace pipemap::detail
