#include "core/baseline.h"

#include <algorithm>

#include "support/error.h"

namespace pipemap {
namespace {

MapResult Finish(const Evaluator& eval, Mapping mapping, std::uint64_t work) {
  MapResult result;
  result.throughput = eval.Throughput(mapping);
  result.mapping = std::move(mapping);
  result.work = work;
  return result;
}

}  // namespace

MapResult DataParallelMapping(const Evaluator& eval, int total_procs) {
  const int k = eval.num_tasks();
  const int min_p = eval.MinProcs(0, k - 1);
  if (min_p > total_procs) {
    throw Infeasible("DataParallelMapping: chain does not fit in memory on "
                     "the full machine");
  }
  Mapping mapping;
  mapping.modules.push_back(ModuleAssignment{0, k - 1, 1, total_procs});
  return Finish(eval, std::move(mapping), 1);
}

MapResult ReplicatedDataParallelMapping(const Evaluator& eval,
                                        int total_procs,
                                        ReplicationPolicy policy) {
  const int k = eval.num_tasks();
  const ModuleConfig cfg =
      eval.ConfigureModule(0, k - 1, total_procs, policy);
  if (!cfg.valid) {
    throw Infeasible("ReplicatedDataParallelMapping: chain does not fit");
  }
  Mapping mapping;
  mapping.modules.push_back(
      ModuleAssignment{0, k - 1, cfg.replicas, cfg.procs});
  return Finish(eval, std::move(mapping), 1);
}

MapResult TaskParallelMapping(const Evaluator& eval, int total_procs) {
  const int k = eval.num_tasks();
  std::vector<int> budgets(k);
  int used = 0;
  for (int t = 0; t < k; ++t) {
    budgets[t] = eval.MinProcs(t, t);
    if (budgets[t] >= kInfeasibleProcs) {
      throw Infeasible("TaskParallelMapping: task does not fit in memory");
    }
    used += budgets[t];
  }
  if (used > total_procs) {
    throw Infeasible("TaskParallelMapping: memory minima exceed machine");
  }
  // Round-robin the remaining processors for an (approximately) even split.
  for (int t = 0; used < total_procs; t = (t + 1) % k) {
    ++budgets[t];
    ++used;
  }
  Mapping mapping;
  for (int t = 0; t < k; ++t) {
    mapping.modules.push_back(ModuleAssignment{t, t, 1, budgets[t]});
  }
  return Finish(eval, std::move(mapping), static_cast<std::uint64_t>(k));
}

MapResult NoCommAssignmentMapping(const Evaluator& eval, int total_procs,
                                  ReplicationPolicy policy) {
  const int k = eval.num_tasks();
  std::vector<int> budgets(k);
  int used = 0;
  for (int t = 0; t < k; ++t) {
    budgets[t] = eval.MinProcs(t, t);
    if (budgets[t] >= kInfeasibleProcs) {
      throw Infeasible("NoCommAssignmentMapping: task does not fit in memory");
    }
    used += budgets[t];
  }
  if (used > total_procs) {
    throw Infeasible("NoCommAssignmentMapping: memory minima exceed machine");
  }

  std::uint64_t work = 0;
  auto effective_exec = [&](int t, int budget) {
    const ModuleConfig cfg = eval.ConfigureModule(t, t, budget, policy);
    PIPEMAP_CHECK(cfg.valid, "NoCommAssignmentMapping: config degenerated");
    return eval.Exec(t, cfg.procs) / cfg.replicas;
  };

  for (; used < total_procs; ++used) {
    // Grant a processor to the slowest task by execution time alone — the
    // O(P k) algorithm the paper describes for negligible communication.
    int slowest = 0;
    double worst = -1.0;
    for (int t = 0; t < k; ++t) {
      ++work;
      const double e = effective_exec(t, budgets[t]);
      if (e > worst) {
        worst = e;
        slowest = t;
      }
    }
    ++budgets[slowest];
  }

  Mapping mapping;
  for (int t = 0; t < k; ++t) {
    const ModuleConfig cfg = eval.ConfigureModule(t, t, budgets[t], policy);
    mapping.modules.push_back(
        ModuleAssignment{t, t, cfg.replicas, cfg.procs});
  }
  return Finish(eval, std::move(mapping), work);
}

}  // namespace pipemap
