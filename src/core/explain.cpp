#include "core/explain.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace pipemap {

MappingExplanation ExplainMapping(const Evaluator& eval,
                                  const Mapping& mapping) {
  PIPEMAP_CHECK(mapping.IsValidFor(eval.num_tasks()),
                "ExplainMapping: mapping invalid for chain");
  MappingExplanation out;
  const int l = mapping.num_modules();
  out.modules.resize(l);
  out.procs_used = mapping.TotalProcs();

  double worst = 0.0;
  for (int m = 0; m < l; ++m) {
    const ModuleAssignment& mod = mapping.modules[m];
    ModuleExplanation& e = out.modules[m];
    e.module = m;
    e.first_task = mod.first_task;
    e.last_task = mod.last_task;
    e.replicas = mod.replicas;
    e.procs = mod.procs_per_instance;
    e.min_procs = eval.MinProcs(mod.first_task, mod.last_task);
    e.replicable = eval.Replicable(mod.first_task, mod.last_task);
    e.max_replicas =
        e.replicable && e.min_procs < kInfeasibleProcs
            ? std::max(1, mod.total_procs() / e.min_procs)
            : 1;

    e.body = eval.Body(mod.first_task, mod.last_task, e.procs);
    if (m > 0) {
      e.in_com = eval.ECom(mod.first_task - 1,
                           mapping.modules[m - 1].procs_per_instance,
                           e.procs);
    }
    if (m + 1 < l) {
      e.out_com = eval.ECom(mod.last_task, e.procs,
                            mapping.modules[m + 1].procs_per_instance);
    }
    e.response = e.in_com + e.body + e.out_com;
    e.effective_response = e.response / e.replicas;
    if (e.effective_response > worst) {
      worst = e.effective_response;
      out.bottleneck = m;
    }
  }
  for (ModuleExplanation& e : out.modules) {
    e.utilization = worst > 0.0 ? e.effective_response / worst : 0.0;
  }
  out.throughput = eval.Throughput(mapping);
  out.latency = eval.Latency(mapping);
  return out;
}

std::string MappingExplanation::Render(const TaskChain& chain) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "mapping uses " << procs_used << " processors, predicted throughput "
     << throughput << " data sets/s, latency " << latency * 1000.0
     << " ms\n";
  for (const ModuleExplanation& e : modules) {
    os << "  module " << e.module << " [";
    for (int t = e.first_task; t <= e.last_task; ++t) {
      if (t > e.first_task) os << " ";
      os << chain.task(t).name;
    }
    os << "] x" << e.replicas << " @" << e.procs << "p";
    if (e.module == bottleneck) os << "  <-- bottleneck";
    os << "\n";
    os << "    response " << e.response * 1000.0 << " ms = in "
       << e.in_com * 1000.0 << " + body " << e.body * 1000.0 << " + out "
       << e.out_com * 1000.0 << "; effective "
       << e.effective_response * 1000.0 << " ms (x" << e.replicas << ")\n";
    os << "    memory minimum " << e.min_procs << " procs/instance; ";
    if (!e.replicable) {
      os << "not replicable";
    } else if (e.replicas >= e.max_replicas) {
      os << "replicated maximally (" << e.replicas << "/" << e.max_replicas
         << ")";
    } else {
      os << "replication " << e.replicas << " of up to " << e.max_replicas;
    }
    os << "; predicted occupancy " << std::setprecision(0)
       << e.utilization * 100.0 << "%\n"
       << std::setprecision(2);
  }
  return os.str();
}

}  // namespace pipemap
