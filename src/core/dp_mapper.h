// Dynamic-programming mapper (paper Section 3).
//
// Finds the mapping of a chain of k tasks onto at most P processors that
// maximizes throughput, over all combinations of clustering, replication,
// and processor allocation, in O(P^4 k^2) time (O(P^4 k) when clustering is
// disabled). The solution is provably optimal with respect to the chain's
// cost model and the configured replication policy.
//
// Formulation. The paper defines the forward function
// A_j(p_total, p_last, p_next): the optimal assignment to the subchain
// t1..tj given the processors of tj and t_{j+1}. We implement the mirror
// image: a state describes the mapping of a *prefix* whose last module is
// fully identified (end task j, length L, budget b) together with the
// per-instance processor count of the module before it. A module's response
// time is completed — and folded into the running bottleneck — at the
// transition that fixes its successor's processor count, exactly the role
// p_next plays in the paper's recurrence.
#pragma once

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap {

class DpMapper {
 public:
  explicit DpMapper(MapperOptions options = {});

  /// Optimal mapping of `eval`'s chain onto at most `total_procs`
  /// processors. Throws pipemap::Infeasible when no valid mapping exists
  /// and pipemap::ResourceLimit when the DP table would exceed
  /// options.max_table_bytes.
  MapResult Map(const Evaluator& eval, int total_procs) const;

  const MapperOptions& options() const { return options_; }

 private:
  MapperOptions options_;
};

}  // namespace pipemap
