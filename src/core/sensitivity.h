// Sensitivity analysis: which cost-model components drive a mapping's
// predicted throughput?
//
// The paper's methodology lives or dies by the profile-fitted model
// (Section 5); its prediction error budget (~10%) is not spent uniformly —
// only the components that feed the bottleneck module's response matter.
// This analysis computes, for every execution, internal-communication, and
// external-communication function, the elasticity of throughput with
// respect to that component: how many percent throughput drops when the
// component costs one percent more. A profiling tool uses this to decide
// which measurements to refine.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/mapping.h"

namespace pipemap {

struct SensitivityEntry {
  enum class Kind { kExec, kICom, kECom };
  Kind kind = Kind::kExec;
  /// Task index for kExec; edge index for kICom/kECom.
  int index = 0;
  /// -d(throughput)/throughput per d(cost)/cost, in [0, 1]. 0 = the
  /// component does not touch the bottleneck; 1 = the bottleneck response
  /// is entirely this component.
  double elasticity = 0.0;
  /// True when the component contributes to the bottleneck module.
  bool on_bottleneck = false;
};

struct SensitivityReport {
  /// Entries sorted by descending elasticity.
  std::vector<SensitivityEntry> entries;
  double base_throughput = 0.0;

  /// Human-readable listing ("exec colffts: 0.83 (bottleneck)").
  std::string Summary(const TaskChain& chain, std::size_t top_n = 8) const;
};

/// Analyzes `mapping` under `eval`'s cost model. `perturbation` is the
/// relative cost increase used for the finite difference (default +10%).
SensitivityReport AnalyzeSensitivity(const Evaluator& eval,
                                     const Mapping& mapping,
                                     double perturbation = 0.1);

}  // namespace pipemap
