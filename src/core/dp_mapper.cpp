#include "core/dp_mapper.h"

#include "core/dp_engine.h"

namespace pipemap {

DpMapper::DpMapper(MapperOptions options) : options_(std::move(options)) {}

MapResult DpMapper::Map(const Evaluator& eval, int total_procs) const {
  detail::DpProblem problem;
  problem.eval = &eval;
  problem.total_procs = total_procs;
  problem.options = options_;
  problem.objective = detail::DpObjective::kBottleneck;
  detail::DpSolution solution = detail::RunChainDp(problem);

  MapResult result;
  result.mapping = std::move(solution.mapping);
  result.throughput = eval.Throughput(result.mapping);
  result.work = solution.work;
  result.pruned_cells = solution.pruned_cells;
  result.timed_out = solution.timed_out;
  result.used_sweep_prefix = solution.used_sweep_prefix;
  result.resweep_from = solution.resweep_from;
  result.worker_work = std::move(solution.worker_work);
  return result;
}

}  // namespace pipemap
