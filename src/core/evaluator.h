// Mapping evaluation (paper Sections 2.2 and 3.2).
//
// The Evaluator turns a chain's cost model into the quantities the mapping
// algorithms optimize:
//   * module response times, including the internal/external communication
//     choice implied by the clustering,
//   * replication configuration via the paper's maximal-replication rule
//     (r = floor(p / p_min), effective processors floor(p / r)),
//   * effective response f_i / r_i and the bottleneck throughput
//     1 / max_i(f_i / r_i).
//
// It also pre-tabulates the cost functions so the dynamic program's inner
// loop meets the paper's O(1)-per-lookup assumption.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "core/task.h"

namespace pipemap {

/// How a module's processor budget is split into replicas.
enum class ReplicationPolicy {
  /// No replication: one instance owns the whole budget.
  kNone,
  /// The paper's rule (Section 3.2): replicate maximally subject to memory,
  /// r = floor(budget / p_min), with the budget divided equally.
  kMaximal,
  /// Ablation: search every feasible r and keep the one minimizing the
  /// module body's effective time (boundary communication excluded so the
  /// choice stays a function of the module and its budget alone, which the
  /// dynamic program requires).
  kSearch,
};

/// Replication configuration chosen for a module budget.
struct ModuleConfig {
  int replicas = 0;
  int procs = 0;  // per instance
  bool valid = false;
};

/// Sentinel returned by Evaluator::MinProcs when no processor count can
/// satisfy a module's memory requirement.
inline constexpr int kInfeasibleProcs = 1 << 28;

class Evaluator {
 public:
  /// `max_procs` is the machine size P; `node_memory_bytes` the usable
  /// memory per processor (drives minimum processor counts).
  /// `num_threads` parallelizes the cost-table pre-tabulation — dominated
  /// by the (k-1)·(P+1)² external-communication table — over the shared
  /// thread pool; <= 0 means hardware concurrency. The tables are
  /// identical for every thread count (disjoint writes, no reductions).
  Evaluator(const TaskChain& chain, int max_procs, double node_memory_bytes,
            int num_threads = 1);

  int max_procs() const { return max_procs_; }
  int num_tasks() const { return k_; }
  const TaskChain& chain() const { return *chain_; }
  double node_memory_bytes() const { return node_memory_bytes_; }

  /// Tabulated cost lookups (O(1) for p <= max_procs).
  double Exec(int task, int procs) const;
  double ICom(int edge, int procs) const;
  double ECom(int edge, int sender_procs, int receiver_procs) const;

  /// True when the cost tables are materialized (max_procs within the
  /// tabulation limit); the batched row accessors and content hashes below
  /// require it.
  bool tabulated() const { return tabulated_; }

  /// Contiguous external-communication row for (edge, sender): entry pr
  /// (1 <= pr <= max_procs) is ECom(edge, sender_procs, pr). Tabulated
  /// evaluators only. The DP's vectorized transition kernel reads these
  /// rows directly instead of calling ECom per cell.
  const double* EComRow(int edge, int sender_procs) const;

  /// FNV-1a content hash of task `task`'s tabulated execution row, and of
  /// edge `edge`'s internal-redistribution row plus external-communication
  /// block. Two evaluators with equal hashes (and equal range caches, see
  /// the accessors below) agree on every cost the DP reads for that task /
  /// edge — the foundation of the incremental re-solve's dirty-suffix
  /// detection. Tabulated evaluators only.
  std::uint64_t TaskCostHash(int task) const;
  std::uint64_t EdgeCostHash(int edge) const;

  /// Raw range caches (k*k, (first, last) at first * k + last), for the
  /// incremental re-solve's direct metadata comparison.
  const std::vector<int>& min_procs_table() const { return min_procs_; }
  const std::vector<char>& replicable_table() const { return replicable_; }

  /// Module body time: executions of tasks [first, last] plus internal
  /// redistributions between them, on one group of `procs` processors.
  /// O(1) via prefix sums.
  double Body(int first, int last, int procs) const;

  /// Memory-imposed minimum processors per instance for module
  /// [first, last]; kInfeasibleProcs when no count suffices.
  int MinProcs(int first, int last) const;

  /// True iff every task in [first, last] is replicable.
  bool Replicable(int first, int last) const;

  /// Splits `proc_budget` processors into replicas for module [first,last]
  /// under `policy`. Invalid when the budget is below the module minimum.
  ModuleConfig ConfigureModule(int first, int last, int proc_budget,
                               ReplicationPolicy policy) const;

  /// Response time of one instance of module [first, last] on `procs`
  /// processors, given the instance processor counts of the neighbouring
  /// modules (0 when the module is first/last in the chain). Includes the
  /// boundary external communications, per the paper's response definition
  /// f_i = f_com_in + f_exec + f_com_out.
  double InstanceResponse(int first, int last, int procs, int prev_procs,
                          int next_procs) const;

  /// f_i / r_i for module `module_index` of `mapping`.
  double EffectiveResponse(const Mapping& mapping, int module_index) const;

  /// max_i (f_i / r_i).
  double BottleneckResponse(const Mapping& mapping) const;

  /// Predicted throughput 1 / BottleneckResponse, in data sets per second.
  double Throughput(const Mapping& mapping) const;

  /// Predicted time for one data set to traverse the pipeline: module
  /// bodies plus each boundary communication counted once.
  double Latency(const Mapping& mapping) const;

 private:
  const TaskChain* chain_;
  int k_;
  int max_procs_;
  double node_memory_bytes_;
  bool tabulated_;

  // body_prefix_[t * (P+1) + p] = sum over tasks 0..t-1 of exec(p) plus
  // icoms of edges 0..t-2, i.e. Body(0, t-1, p).
  std::vector<double> exec_table_;    // k * (P+1)
  std::vector<double> icom_table_;    // (k-1) * (P+1)
  std::vector<double> body_prefix_;   // (k+1) * (P+1)
  std::vector<double> ecom_table_;    // (k-1) * (P+1) * (P+1)
  std::vector<int> min_procs_;        // k * k cache, kInfeasibleProcs sentinel
  std::vector<char> replicable_;      // k * k cache

  // Content hashes over the tables above (tabulated evaluators only).
  std::vector<std::uint64_t> task_hash_;  // k
  std::vector<std::uint64_t> edge_hash_;  // k - 1

  int MinProcsUncached(int first, int last) const;
};

}  // namespace pipemap
