// Structural operations on task chains.
//
// Real pipelines are assembled and dissected: a front-end chain feeds a
// back-end chain, a subrange is profiled or mapped in isolation, a stage is
// spliced out. These helpers keep the task metadata, memory specs, and all
// three cost-function families consistent through such edits.
#pragma once

#include <memory>

#include "core/task.h"

namespace pipemap {

/// The chain restricted to tasks [first, last] (costs and memory cloned;
/// edges interior to the range kept).
TaskChain SubChain(const TaskChain& chain, int first, int last);

/// Concatenates two chains, joining them with the given edge costs for the
/// new boundary between `head`'s last task and `tail`'s first task.
TaskChain ConcatChains(const TaskChain& head, const TaskChain& tail,
                       std::unique_ptr<ScalarCost> joint_icom,
                       std::unique_ptr<PairCost> joint_ecom);

/// The chain with task `task` removed. The two edges surrounding the task
/// collapse into one, whose costs must be supplied (there is no generally
/// correct way to compose them automatically). Requires chain.size() >= 2.
/// Removing an end task needs no joint costs (pass nullptr).
TaskChain EraseTask(const TaskChain& chain, int task,
                    std::unique_ptr<ScalarCost> joint_icom,
                    std::unique_ptr<PairCost> joint_ecom);

}  // namespace pipemap
