// Exhaustive reference mapper.
//
// Enumerates every clustering (2^(k-1) boundary subsets), every budget
// vector, and configures modules with the same rule as the other mappers.
// Exponential in P and k — usable only for small instances, where it serves
// as the ground truth that certifies the dynamic program's optimality in
// tests.
#pragma once

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap {

struct BruteForceOptions {
  MapperOptions base;
  /// Abort (pipemap::ResourceLimit) if more than this many assignments
  /// would be evaluated.
  std::uint64_t max_evaluations = 50'000'000;
};

class BruteForceMapper {
 public:
  explicit BruteForceMapper(BruteForceOptions options = {});

  MapResult Map(const Evaluator& eval, int total_procs) const;

 private:
  BruteForceOptions options_;
};

/// Result of an exhaustive latency optimization.
struct LatencyBruteResult {
  Mapping mapping;
  double latency = 0.0;
  double throughput = 0.0;
  std::uint64_t work = 0;
  /// True when MapperOptions::deadline cut the enumeration short; `mapping`
  /// is the best candidate seen, not a certified optimum.
  bool timed_out = false;
};

/// Exhaustive minimum-latency search: enumerates every clustering and
/// every per-module (instance size, replica count) pair — unconstrained by
/// any replication policy — subject to the processor budget and, when
/// `min_throughput` > 0, a throughput floor. The exact reference for
/// LatencyMapper (whose throughput-constrained mode optimizes over two
/// restricted configuration families). Exponential; small instances only.
LatencyBruteResult BruteForceMinLatency(const Evaluator& eval,
                                        int total_procs,
                                        double min_throughput = 0.0,
                                        const BruteForceOptions& options = {});

}  // namespace pipemap
