// Greedy heuristic mapper (paper Section 4).
//
// Procedure Greedy: seed every module with its minimum processor count,
// then repeatedly identify the module with the longest effective response
// time and grant one more processor to whichever of {its predecessor,
// itself, its successor} yields the best new throughput, keeping the best
// assignment ever seen. O(P k) processor-allocation steps.
//
// Variants implemented:
//  * kNeighborhood — the paper's Procedure Greedy (predecessor/successor
//    candidates included, necessary because response times contain
//    communication terms that depend on neighbour processor counts).
//  * kBottleneckOnly — the Theorem 1 variant (add to the slowest module
//    only), provably optimal when communication time is monotonically
//    increasing in the processor counts involved.
//
// Optional limited backtracking implements the Theorem 2 consequence: the
// plain greedy can over-allocate at most two processors per task under
// convexity, so an exhaustive search within a +/-2 radius of the greedy
// answer recovers the optimum at O(5^k) extra cost.
//
// Clustering (Section 4.2): run greedy once over singleton modules, sweep
// adjacent pairs for profitable merges (and re-check splits), then re-run
// greedy from scratch on the final clustering.
#pragma once

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap {

struct GreedyOptions {
  MapperOptions base;

  enum class Variant { kNeighborhood, kBottleneckOnly };
  Variant variant = Variant::kNeighborhood;

  /// Enables the post-pass exhaustive search within `backtrack_radius` of
  /// the greedy assignment.
  bool limited_backtracking = false;
  int backtrack_radius = 2;
  /// Safety cap on backtracking combinations; beyond it the radius is
  /// reduced (and backtracking skipped if radius 1 still exceeds it).
  std::uint64_t max_backtrack_combos = 2'000'000;

  /// Maximum merge/split sweeps over the clustering.
  int clustering_passes = 4;
};

class GreedyMapper {
 public:
  explicit GreedyMapper(GreedyOptions options = {});

  /// Maps the chain onto at most `total_procs` processors, choosing the
  /// clustering heuristically when options.base.allow_clustering is set.
  MapResult Map(const Evaluator& eval, int total_procs) const;

  /// Processor assignment for a fixed clustering (no merge/split search).
  MapResult MapWithClustering(const Evaluator& eval, int total_procs,
                              const Clustering& clustering) const;

  const GreedyOptions& options() const { return options_; }

 private:
  GreedyOptions options_;
};

}  // namespace pipemap
