#include "core/simd_kernels.h"

#include <algorithm>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#define PIPEMAP_X86 1
#include <immintrin.h>
#endif

namespace pipemap::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Scalar reference implementations. These are the semantics; the AVX2
// versions below replicate them lane for lane.
// ---------------------------------------------------------------------------

void PolyScalarRowScalar(const double c[3], double* out, int max_p) {
  for (int p = 1; p <= max_p; ++p) {
    const double pd = static_cast<double>(p);
    out[p] = c[0] + c[1] / pd + c[2] * pd;
  }
}

void PolyPairRowScalar(const double c[5], int sender_procs, double* out,
                       int max_pr) {
  const double ps = static_cast<double>(sender_procs);
  // PolyPairCost::Eval associates left to right; hoisting the pr-invariant
  // prefix c0 + c1/ps and the product c3*ps preserves every intermediate.
  const double base = c[0] + c[1] / ps;
  const double send_over = c[3] * ps;
  for (int pr = 1; pr <= max_pr; ++pr) {
    const double prd = static_cast<double>(pr);
    out[pr] = base + c[2] / prd + send_over + c[4] * prd;
  }
}

double RowMinScalar(const double* x, int n) {
  double m = kInf;
  for (int i = 0; i < n; ++i) m = std::min(m, x[i]);
  return m;
}

void UpdateBestOverTargetsScalar(double v, double c_in, double d_in,
                                 double src_index, const double* o, int m,
                                 double replicas, double response_cap,
                                 bool path_sum, double* best, double* src) {
  // Process the padded lane count like the AVX2 path does, so the two are
  // bitwise interchangeable on every lane, including the scratch tail.
  const int m4 = (m + 3) & ~3;
  for (int t = 0; t < m4; ++t) {
    const double ot = o[t];
    const double resp = (c_in + ot) / replicas;
    if (resp > response_cap) continue;
    const double cand = path_sum ? d_in + ot : std::max(v, resp);
    if (cand < best[t]) {
      best[t] = cand;
      src[t] = src_index;
    }
  }
}

#if PIPEMAP_X86

// ---------------------------------------------------------------------------
// AVX2 implementations. target("avx2") deliberately does not enable FMA:
// every lane op is the exactly-rounded IEEE equivalent of the scalar code.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void PolyScalarRowAvx2(const double c[3],
                                                       double* out,
                                                       int max_p) {
  const __m256d c0 = _mm256_set1_pd(c[0]);
  const __m256d c1 = _mm256_set1_pd(c[1]);
  const __m256d c2 = _mm256_set1_pd(c[2]);
  const __m256d four = _mm256_set1_pd(4.0);
  __m256d pv = _mm256_setr_pd(1.0, 2.0, 3.0, 4.0);
  int p = 1;
  for (; p + 3 <= max_p; p += 4) {
    const __m256d t = _mm256_add_pd(c0, _mm256_div_pd(c1, pv));
    _mm256_storeu_pd(out + p, _mm256_add_pd(t, _mm256_mul_pd(c2, pv)));
    pv = _mm256_add_pd(pv, four);
  }
  for (; p <= max_p; ++p) {
    const double pd = static_cast<double>(p);
    out[p] = c[0] + c[1] / pd + c[2] * pd;
  }
}

__attribute__((target("avx2"))) void PolyPairRowAvx2(const double c[5],
                                                     int sender_procs,
                                                     double* out,
                                                     int max_pr) {
  const double ps = static_cast<double>(sender_procs);
  const double base_s = c[0] + c[1] / ps;
  const double send_over_s = c[3] * ps;
  const __m256d base = _mm256_set1_pd(base_s);
  const __m256d send_over = _mm256_set1_pd(send_over_s);
  const __m256d c2 = _mm256_set1_pd(c[2]);
  const __m256d c4 = _mm256_set1_pd(c[4]);
  const __m256d four = _mm256_set1_pd(4.0);
  __m256d prv = _mm256_setr_pd(1.0, 2.0, 3.0, 4.0);
  int pr = 1;
  for (; pr + 3 <= max_pr; pr += 4) {
    __m256d t = _mm256_add_pd(base, _mm256_div_pd(c2, prv));
    t = _mm256_add_pd(t, send_over);
    t = _mm256_add_pd(t, _mm256_mul_pd(c4, prv));
    _mm256_storeu_pd(out + pr, t);
    prv = _mm256_add_pd(prv, four);
  }
  for (; pr <= max_pr; ++pr) {
    const double prd = static_cast<double>(pr);
    out[pr] = base_s + c[2] / prd + send_over_s + c[4] * prd;
  }
}

__attribute__((target("avx2"))) double RowMinAvx2(const double* x, int n) {
  __m256d acc = _mm256_set1_pd(kInf);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = std::min(std::min(lanes[0], lanes[1]),
                      std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::min(m, x[i]);
  return m;
}

__attribute__((target("avx2"))) void UpdateBestOverTargetsAvx2(
    double v, double c_in, double d_in, double src_index, const double* o,
    int m, double replicas, double response_cap, bool path_sum, double* best,
    double* src) {
  const __m256d vv = _mm256_set1_pd(v);
  const __m256d cv = _mm256_set1_pd(c_in);
  const __m256d dv = _mm256_set1_pd(d_in);
  const __m256d rv = _mm256_set1_pd(replicas);
  const __m256d capv = _mm256_set1_pd(response_cap);
  const __m256d infv = _mm256_set1_pd(kInf);
  const __m256d idxv = _mm256_set1_pd(src_index);
  // The caller pads o/best/src to a multiple of 4 with o = +inf, so the
  // full-vector loop needs no tail: an infinite outgoing cost produces an
  // infinite candidate, which never survives the strict-< blend.
  const int m4 = (m + 3) & ~3;
  for (int t = 0; t < m4; t += 4) {
    const __m256d ot = _mm256_loadu_pd(o + t);
    const __m256d resp = _mm256_div_pd(_mm256_add_pd(cv, ot), rv);
    __m256d cand = path_sum ? _mm256_add_pd(dv, ot)
                            : _mm256_max_pd(resp, vv);
    const __m256d over = _mm256_cmp_pd(resp, capv, _CMP_GT_OQ);
    cand = _mm256_blendv_pd(cand, infv, over);
    const __m256d bt = _mm256_loadu_pd(best + t);
    const __m256d lt = _mm256_cmp_pd(cand, bt, _CMP_LT_OQ);
    _mm256_storeu_pd(best + t, _mm256_blendv_pd(bt, cand, lt));
    const __m256d st = _mm256_loadu_pd(src + t);
    _mm256_storeu_pd(src + t, _mm256_blendv_pd(st, idxv, lt));
  }
}

bool ProbeAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#else  // !PIPEMAP_X86

bool ProbeAvx2() { return false; }

#endif

}  // namespace

bool HasAvx2() {
  static const bool has = ProbeAvx2();
  return has;
}

const char* ActiveIsa() { return HasAvx2() ? "avx2" : "scalar"; }

void PolyScalarRow(const double c[3], double* out, int max_p) {
#if PIPEMAP_X86
  if (HasAvx2()) {
    PolyScalarRowAvx2(c, out, max_p);
    return;
  }
#endif
  PolyScalarRowScalar(c, out, max_p);
}

void PolyPairRow(const double c[5], int sender_procs, double* out,
                 int max_pr) {
#if PIPEMAP_X86
  if (HasAvx2()) {
    PolyPairRowAvx2(c, sender_procs, out, max_pr);
    return;
  }
#endif
  PolyPairRowScalar(c, sender_procs, out, max_pr);
}

double RowMin(const double* x, int n) {
#if PIPEMAP_X86
  if (HasAvx2()) return RowMinAvx2(x, n);
#endif
  return RowMinScalar(x, n);
}

void UpdateBestOverTargets(double v, double c_in, double d_in,
                           double src_index, const double* o, int m,
                           double replicas, double response_cap,
                           bool path_sum, double* best, double* src) {
#if PIPEMAP_X86
  if (HasAvx2()) {
    UpdateBestOverTargetsAvx2(v, c_in, d_in, src_index, o, m, replicas,
                              response_cap, path_sum, best, src);
    return;
  }
#endif
  UpdateBestOverTargetsScalar(v, c_in, d_in, src_index, o, m, replicas,
                              response_cap, path_sum, best, src);
}

}  // namespace pipemap::simd
