// Task and task-chain types (paper Section 2.1).
//
// A program is a linear chain of data parallel tasks t1..tk; each task
// receives a data set from its predecessor, processes it, and passes the
// result on. The chain object couples the task metadata (name,
// replicability) with the chain's cost model.
#pragma once

#include <string>
#include <vector>

#include "costmodel/chain_costs.h"

namespace pipemap {

/// A single data parallel task.
struct Task {
  std::string name;
  /// Whether alternate data sets may be processed by distinct instances of
  /// this task (Section 2.2: legality comes from data-dependence analysis,
  /// which the paper treats as an oracle; we carry the oracle's answer).
  bool replicable = true;
};

/// A linear chain of data parallel tasks plus its cost model.
class TaskChain {
 public:
  /// Requires tasks.size() == costs.num_tasks() and at least one task.
  TaskChain(std::vector<Task> tasks, ChainCostModel costs);

  int size() const { return static_cast<int>(tasks_.size()); }

  const Task& task(int i) const;
  const ChainCostModel& costs() const { return costs_; }
  ChainCostModel& mutable_costs() { return costs_; }

  /// True iff every task in [first, last] is replicable; only such ranges
  /// may form replicated modules.
  bool RangeReplicable(int first, int last) const;

  /// Chain with the same tasks but a different cost model (e.g. swapping
  /// ground truth for a fitted model).
  TaskChain WithCosts(ChainCostModel costs) const;

 private:
  std::vector<Task> tasks_;
  ChainCostModel costs_;
};

}  // namespace pipemap
