// Mapping representation (paper Section 2.2).
//
// A mapping is a list of modules M; M(i) is a triplet (T, r, p) where T is a
// contiguous subsequence of tasks clustered into the module, r the number of
// replicated instances, and p the number of processors per instance.
#pragma once

#include <string>
#include <vector>

#include "core/task.h"

namespace pipemap {

/// One module of a mapping: tasks [first_task, last_task] run as `replicas`
/// instances of `procs_per_instance` processors each.
struct ModuleAssignment {
  int first_task = 0;
  int last_task = 0;  // inclusive
  int replicas = 1;
  int procs_per_instance = 1;

  int num_tasks() const { return last_task - first_task + 1; }
  int total_procs() const { return replicas * procs_per_instance; }

  bool operator==(const ModuleAssignment&) const = default;
};

/// A complete mapping of a chain.
struct Mapping {
  std::vector<ModuleAssignment> modules;

  int num_modules() const { return static_cast<int>(modules.size()); }

  /// Total processors consumed over all module instances.
  int TotalProcs() const;

  /// True iff the modules partition tasks 0..k-1 in order with no gaps and
  /// every module has positive replicas and processors.
  bool IsValidFor(int num_tasks) const;

  /// Index of the module containing `task`; requires a valid mapping.
  int ModuleOf(int task) const;

  /// Human-readable rendering, e.g.
  ///   [colffts]x8 @3p | [rowffts hist]x10 @4p  (64 procs)
  std::string ToString(const TaskChain& chain) const;

  bool operator==(const Mapping&) const = default;
};

/// Throws pipemap::InvalidArgument unless `mapping` is a valid mapping of
/// `chain` using at most `max_procs` processors.
void ValidateMapping(const Mapping& mapping, const TaskChain& chain,
                     int max_procs);

}  // namespace pipemap
