// Latency and processor-count optimization for task pipelines.
//
// The paper optimizes throughput; its companion work (Vondran, "Optimization
// of latency, throughput and processors for pipelines of data parallel
// tasks", reference [14]) treats the remaining corners of the problem:
//
//   * minimum latency — the fastest a single data set can traverse the
//     pipeline, given at most P processors;
//   * minimum latency subject to a throughput floor — the practical design
//     point for streaming systems with deadlines (a tracking radar must
//     both keep up with the dwell rate and deliver fresh tracks);
//   * minimum processors subject to a throughput floor — sizing a machine
//     partition for a required rate;
//   * the full latency/throughput Pareto frontier.
//
// All four reduce to the paper's dynamic program: latency is a path-sum
// objective over the same state space, and a throughput floor decomposes
// into a local per-module bound on the effective response f_i / r_i.
#pragma once

#include <vector>

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap {

/// Result of a latency optimization.
struct LatencyResult {
  Mapping mapping;
  /// Predicted time for one data set to traverse the pipeline (seconds).
  double latency = 0.0;
  /// Predicted throughput of the same mapping (data sets per second).
  double throughput = 0.0;
  std::uint64_t work = 0;
  /// True when MapperOptions::deadline expired mid-solve; `mapping` is the
  /// best incumbent found, not a certified optimum.
  bool timed_out = false;
};

class LatencyMapper {
 public:
  explicit LatencyMapper(MapperOptions options = {});

  /// Minimum-latency mapping using at most `total_procs` processors.
  /// Replication is disabled for this objective: extra instances never
  /// reduce (and via narrower groups usually increase) per-data-set
  /// latency.
  LatencyResult MinLatency(const Evaluator& eval, int total_procs) const;

  /// Minimum-latency mapping whose throughput is at least
  /// `min_throughput`. Replication follows options.replication (it helps
  /// meet the floor). Throws pipemap::Infeasible when the floor cannot be
  /// met with `total_procs` processors.
  LatencyResult MinLatencyWithThroughput(const Evaluator& eval,
                                         int total_procs,
                                         double min_throughput) const;

  const MapperOptions& options() const { return options_; }

 private:
  MapperOptions options_;
};

/// Result of a machine-sizing query.
struct ProcCountResult {
  int procs = 0;
  Mapping mapping;
  double throughput = 0.0;
};

/// Smallest processor count in [1, max_procs] whose optimal mapping reaches
/// `target_throughput`, found by binary search over the throughput DP
/// (optimal throughput is monotone in the processor budget). Throws
/// pipemap::Infeasible when even `max_procs` falls short.
ProcCountResult MinProcessorsForThroughput(const Evaluator& eval,
                                           int max_procs,
                                           double target_throughput,
                                           const MapperOptions& options = {});

/// One point of the latency/throughput trade-off.
struct FrontierPoint {
  double throughput = 0.0;
  double latency = 0.0;
  Mapping mapping;
};

/// The latency/throughput Pareto frontier on `total_procs` processors:
/// for `num_points` throughput floors spaced between a pure-latency design
/// and the maximum achievable throughput, the minimum-latency mapping
/// meeting each floor. Points are returned in increasing-throughput order
/// and strictly Pareto-filtered.
std::vector<FrontierPoint> LatencyThroughputFrontier(
    const Evaluator& eval, int total_procs, int num_points,
    const MapperOptions& options = {});

}  // namespace pipemap
