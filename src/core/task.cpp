#include "core/task.h"

#include "support/error.h"

namespace pipemap {

TaskChain::TaskChain(std::vector<Task> tasks, ChainCostModel costs)
    : tasks_(std::move(tasks)), costs_(std::move(costs)) {
  PIPEMAP_CHECK(!tasks_.empty(), "TaskChain: chain must have at least one task");
  PIPEMAP_CHECK(static_cast<int>(tasks_.size()) == costs_.num_tasks(),
                "TaskChain: task list and cost model sizes differ");
}

const Task& TaskChain::task(int i) const {
  PIPEMAP_CHECK(i >= 0 && i < size(), "TaskChain: task index out of range");
  return tasks_[i];
}

bool TaskChain::RangeReplicable(int first, int last) const {
  PIPEMAP_CHECK(first >= 0 && last < size() && first <= last,
                "TaskChain: bad task range");
  for (int t = first; t <= last; ++t) {
    if (!tasks_[t].replicable) return false;
  }
  return true;
}

TaskChain TaskChain::WithCosts(ChainCostModel costs) const {
  return TaskChain(tasks_, std::move(costs));
}

}  // namespace pipemap
