#include "core/chain_ops.h"

#include <vector>

#include "support/error.h"

namespace pipemap {

TaskChain SubChain(const TaskChain& chain, int first, int last) {
  PIPEMAP_CHECK(first >= 0 && last < chain.size() && first <= last,
                "SubChain: bad task range");
  const ChainCostModel& costs = chain.costs();
  std::vector<Task> tasks;
  ChainCostModel sub;
  for (int t = first; t <= last; ++t) {
    tasks.push_back(chain.task(t));
    sub.AddTask(costs.ExecFn(t).Clone(), costs.Memory(t));
  }
  for (int e = first; e < last; ++e) {
    sub.SetEdge(e - first, costs.IComFn(e).Clone(), costs.EComFn(e).Clone());
  }
  return TaskChain(std::move(tasks), std::move(sub));
}

TaskChain ConcatChains(const TaskChain& head, const TaskChain& tail,
                       std::unique_ptr<ScalarCost> joint_icom,
                       std::unique_ptr<PairCost> joint_ecom) {
  PIPEMAP_CHECK(joint_icom != nullptr && joint_ecom != nullptr,
                "ConcatChains: joint edge costs required");
  std::vector<Task> tasks;
  ChainCostModel costs;
  auto append = [&](const TaskChain& part, int from_edge_offset) {
    const ChainCostModel& src = part.costs();
    for (int t = 0; t < part.size(); ++t) {
      tasks.push_back(part.task(t));
      costs.AddTask(src.ExecFn(t).Clone(), src.Memory(t));
      if (t > 0) {
        const int e = t - 1;
        costs.SetEdge(from_edge_offset + e, src.IComFn(e).Clone(),
                      src.EComFn(e).Clone());
      }
    }
  };
  append(head, 0);
  const int joint_edge = head.size() - 1;
  // Reserve the joint edge slot by adding tail's first task, then fill it.
  append(tail, head.size());
  costs.SetEdge(joint_edge, std::move(joint_icom), std::move(joint_ecom));
  return TaskChain(std::move(tasks), std::move(costs));
}

TaskChain EraseTask(const TaskChain& chain, int task,
                    std::unique_ptr<ScalarCost> joint_icom,
                    std::unique_ptr<PairCost> joint_ecom) {
  PIPEMAP_CHECK(task >= 0 && task < chain.size(), "EraseTask: bad index");
  PIPEMAP_CHECK(chain.size() >= 2, "EraseTask: cannot empty the chain");
  const bool interior = task > 0 && task < chain.size() - 1;
  PIPEMAP_CHECK(!interior || (joint_icom != nullptr && joint_ecom != nullptr),
                "EraseTask: interior removal needs joint edge costs");

  const ChainCostModel& costs = chain.costs();
  std::vector<Task> tasks;
  ChainCostModel out;
  for (int t = 0; t < chain.size(); ++t) {
    if (t == task) continue;
    tasks.push_back(chain.task(t));
    out.AddTask(costs.ExecFn(t).Clone(), costs.Memory(t));
  }
  // Copy edges not incident to the removed task; splice the joint.
  int out_edge = 0;
  for (int e = 0; e < chain.size() - 1; ++e) {
    if (e == task - 1 && interior) {
      out.SetEdge(out_edge++, std::move(joint_icom), std::move(joint_ecom));
      continue;  // skips the e == task edge via the condition below
    }
    if (e == task - 1 || e == task) continue;  // incident to removed end task
    out.SetEdge(out_edge++, costs.IComFn(e).Clone(), costs.EComFn(e).Clone());
  }
  return TaskChain(std::move(tasks), std::move(out));
}

}  // namespace pipemap
