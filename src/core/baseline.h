// Baseline mappings (paper Figure 1 and the comparisons of Section 6.4).
//
//  * Pure data parallelism (Fig. 1a): every task on all processors — the
//    mapping the paper's Table 2 baselines against.
//  * Replicated data parallelism (Fig. 1c): one module, maximal replication.
//  * Pure task parallelism (Fig. 1b): one module per task, budgets split as
//    evenly as memory minima allow.
//  * No-communication-cost assignment (Choudhary et al. [4]): the O(P k)
//    allocator that repeatedly grants a processor to the task with the
//    largest execution-only effective time, ignoring communication — used
//    as an ablation to show why a realistic communication model matters.
#pragma once

#include "core/evaluator.h"
#include "core/mapper.h"

namespace pipemap {

/// Fig. 1(a): all tasks in one module on all processors, no replication.
MapResult DataParallelMapping(const Evaluator& eval, int total_procs);

/// Fig. 1(c): all tasks in one module, replicated per `policy`.
MapResult ReplicatedDataParallelMapping(const Evaluator& eval,
                                        int total_procs,
                                        ReplicationPolicy policy);

/// Fig. 1(b): one module per task, processors split evenly subject to the
/// per-task memory minima; no replication. Throws pipemap::Infeasible when
/// the minima do not fit.
MapResult TaskParallelMapping(const Evaluator& eval, int total_procs);

/// Choudhary-style assignment: singleton modules, replication per `policy`,
/// processors granted one at a time to the task with the largest effective
/// execution time, with all communication costs treated as zero during the
/// allocation. The returned throughput is nevertheless evaluated under the
/// full model, so the result quantifies the cost of ignoring communication.
MapResult NoCommAssignmentMapping(const Evaluator& eval, int total_procs,
                                  ReplicationPolicy policy);

}  // namespace pipemap
