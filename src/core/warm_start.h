// Cross-solve warm-start state for budget/floor sweeps.
//
// The mapping engines are routinely invoked many times over the same chain
// and machine while only one knob moves: the latency/throughput frontier
// sweeps the throughput floor, machine sizing binary-searches the
// processor budget, and the portfolio policy runs a heuristic before the
// exact solver. Those adjacent solves share two expensive artifacts:
//
//   * the per-module-range configuration tables the dynamic program
//     tabulates before its sweep (every (first, last) range × budget
//     configuration, plus the derived minimum-budget and suffix bounds) —
//     identical across solves whenever the chain, replication rule, and
//     feasibility predicate are unchanged;
//   * a feasible incumbent mapping, whose objective value seeds the DP's
//     dominance-pruning threshold so the optimistic bounds have something
//     tight to beat from the first stage onward.
//
// A WarmStartState bundles both. Callers hang one off
// MapperOptions::warm; the solvers read what matches and refresh the state
// after each run. Warm starts are accelerators only — the dynamic
// program's pruning is bound-safe, so a warm-started solve returns exactly
// the mapping and objective a cold solve would (a property the tests pin).
//
// Contract: table reuse is keyed on everything the tables depend on
// except the feasibility predicate, whose std::function identity cannot be
// compared. The caller must only share one WarmStartState across solves
// that use the same predicate (the engine keys its warm states on the
// machine fingerprint, which subsumes it). The state is not synchronized;
// concurrent solves must not share one instance without external locking.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/mapping.h"

namespace pipemap {

namespace detail {
struct DpRangeTables;
struct DpSweepState;
}  // namespace detail

struct WarmStartState {
  /// Most recent solution under this state's problem family. The DP
  /// re-evaluates it under the current constraints (budget, floor) and
  /// uses the value as a pruning bound when it remains feasible.
  std::optional<Mapping> incumbent;

  /// Most recent greedy clustering; lets the engine skip the merge/split
  /// clustering search on adjacent solves (heuristic reuse — unlike DP
  /// warm starts, a clustering-seeded greedy run may return a different
  /// mapping than a cold one).
  std::vector<std::pair<int, int>> clustering;

  /// Reusable DP range tables (see dp_engine.h), most recently used
  /// first. A small pool rather than a single slot: frontier sweeps
  /// alternate between the latency-body and policy configuration rules at
  /// every floor, and a single slot would thrash where the pool keeps the
  /// floor-independent policy tables alive across the whole sweep. The DP
  /// scans for a usable entry and inserts a fresh one (evicting the
  /// least recently used beyond kMaxWarmTables) when none matches.
  std::vector<std::shared_ptr<detail::DpRangeTables>> tables;

  /// Captured DP sweep for incremental re-solves (see
  /// core/dp_sweep_state.h). Populated only when a solve runs with
  /// MapperOptions::incremental; a subsequent solve whose chain prefix and
  /// cost content are unchanged reuses the completed prefix stages and
  /// re-sweeps only the dirty suffix. A solve checks the state out
  /// exclusively (detach, mutate, re-attach on success), so an aborted
  /// re-solve can never leave a half-rebuilt grid behind for the next one.
  std::shared_ptr<detail::DpSweepState> sweep;

  /// Reuse statistics, for provenance and tests.
  std::uint64_t tables_reused = 0;
  std::uint64_t tables_built = 0;
  std::uint64_t incumbents_seeded = 0;
  std::uint64_t sweeps_captured = 0;
  std::uint64_t prefix_reused = 0;
};

}  // namespace pipemap
