#include "core/greedy_mapper.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "support/error.h"
#include "support/metrics.h"
#include "support/tracer.h"

namespace pipemap {
namespace {

/// Smallest budget at or above the memory minimum for which a valid
/// (feasibility-respecting) configuration exists; nullopt if none up to cap.
///
/// Validity is monotone in the budget: raising `b` only enlarges the set of
/// candidate (replicas, instance size) pairs ConfigureConstrained may pick
/// from (every instance size in [min_p, b/r] stays available at b+1), so a
/// budget that configures validly never becomes invalid with more
/// processors. That makes the smallest usable budget binary-searchable —
/// O(log P) ConfigureConstrained probes instead of the O(P) linear scan
/// that used to make greedy setup quadratic in P per module.
std::optional<int> MinUsableBudget(const Evaluator& eval, int first, int last,
                                   int cap, ReplicationPolicy policy,
                                   const ProcPredicate& feasible) {
  const int min_p = eval.MinProcs(first, last);
  if (min_p >= kInfeasibleProcs || min_p > cap) return std::nullopt;
  std::uint64_t probes = 0;
  auto usable = [&](int b) {
    ++probes;
    return ConfigureConstrained(eval, first, last, b, policy, feasible).valid;
  };
  std::optional<int> result;
  if (usable(min_p)) {
    result = min_p;
  } else if (usable(cap)) {
    // Invariant: lo is unusable, hi is usable.
    int lo = min_p, hi = cap;
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo) / 2;
      (usable(mid) ? hi : lo) = mid;
    }
    result = hi;
  }
  PIPEMAP_COUNTER_ADD("greedy.min_budget_probes", probes);
  return result;
}

/// Throughput of (clustering, budgets) or nullopt if unconfigurable.
std::optional<double> TryThroughput(const Evaluator& eval,
                                    const Clustering& clustering,
                                    const std::vector<int>& budgets,
                                    ReplicationPolicy policy,
                                    const ProcPredicate& feasible) {
  const auto mapping =
      BuildMapping(eval, clustering, budgets, policy, feasible);
  if (!mapping) return std::nullopt;
  return eval.Throughput(*mapping);
}

struct GreedyState {
  Clustering clustering;
  std::vector<int> budgets;
  double throughput = 0.0;
};

}  // namespace

GreedyMapper::GreedyMapper(GreedyOptions options)
    : options_(std::move(options)) {}

MapResult GreedyMapper::MapWithClustering(const Evaluator& eval,
                                          int total_procs,
                                          const Clustering& clustering) const {
  const ReplicationPolicy policy = options_.base.replication;
  const ProcPredicate& feasible = options_.base.proc_feasible;
  const int l = static_cast<int>(clustering.size());
  PIPEMAP_CHECK(l >= 1, "GreedyMapper: clustering must be non-empty");

  const ScopedMetricsEnable observe(options_.base.observe);
  PIPEMAP_TRACE_SPAN("greedy.cluster", "greedy", l);

  std::uint64_t work = 0;
  std::uint64_t step_probes = 0;
  std::uint64_t backtrack_evals = 0;
  std::uint64_t refinement_iters = 0;

  // Step 1: minimum viable budgets.
  std::vector<int> budgets(l);
  int used = 0;
  for (int i = 0; i < l; ++i) {
    const auto [first, last] = clustering[i];
    const auto min_b =
        MinUsableBudget(eval, first, last, total_procs, policy, feasible);
    if (!min_b) {
      throw Infeasible("GreedyMapper: module cannot be configured within "
                       "the processor budget");
    }
    budgets[i] = *min_b;
    used += *min_b;
  }
  if (used > total_procs) {
    throw Infeasible(
        "GreedyMapper: not enough processors for module memory minima");
  }

  auto throughput_of = [&](const std::vector<int>& b) {
    return TryThroughput(eval, clustering, b, policy, feasible);
  };

  const auto initial = throughput_of(budgets);
  PIPEMAP_CHECK(initial.has_value(),
                "GreedyMapper: minimum budgets are unconfigurable");
  GreedyState best{clustering, budgets, *initial};
  double current_throughput = *initial;

  // Greedy is an anytime algorithm: every refinement iteration leaves a
  // complete feasible assignment, so a deadline simply stops improving and
  // returns the best state reached so far with timed_out set.
  const Deadline* deadline = options_.base.deadline.get();
  bool timed_out = false;

  // Steps 2-3: hand out remaining processors one at a time.
  for (int free = total_procs - used; free > 0; --free) {
    if (deadline != nullptr && deadline->expired()) {
      timed_out = true;
      break;
    }
    ++refinement_iters;
    // Identify the bottleneck module under the current assignment.
    const auto mapping =
        BuildMapping(eval, clustering, budgets, policy, feasible);
    PIPEMAP_CHECK(mapping.has_value(), "GreedyMapper: assignment degenerated");
    int bottleneck = 0;
    double worst = -1.0;
    for (int i = 0; i < l; ++i) {
      const double r = eval.EffectiveResponse(*mapping, i);
      if (r > worst) {
        worst = r;
        bottleneck = i;
      }
    }

    std::vector<int> candidates;
    if (options_.variant == GreedyOptions::Variant::kBottleneckOnly) {
      candidates = {bottleneck};
    } else {
      // Order matters only for tie-breaking: prefer the bottleneck itself,
      // then its predecessor, then its successor.
      candidates.push_back(bottleneck);
      if (bottleneck > 0) candidates.push_back(bottleneck - 1);
      if (bottleneck + 1 < l) candidates.push_back(bottleneck + 1);
    }

    // For each candidate module we probe the one-processor step and, for
    // replicable modules, the smallest budget that raises the replica
    // count. The one-at-a-time walk cannot cross a replication boundary on
    // its own — the paper's "assigning 2 to 9 processors may have no
    // impact, but adding a 10th may dramatically improve" pathology — but
    // under the modified (effective) response function the boundary is a
    // known discrete feature, so the greedy probes it directly.
    int chosen = -1;
    int chosen_budget = 0;
    double chosen_throughput = -1.0;
    for (int c : candidates) {
      const auto [first, last] = clustering[c];
      std::vector<int> steps = {budgets[c] + 1};
      const int min_p = eval.MinProcs(first, last);
      if (eval.Replicable(first, last) && min_p < kInfeasibleProcs &&
          policy != ReplicationPolicy::kNone) {
        const int next_boundary = (budgets[c] / min_p + 1) * min_p;
        if (next_boundary > budgets[c] + 1) steps.push_back(next_boundary);
      }
      for (int step : steps) {
        if (step - budgets[c] > free) continue;  // cannot afford this step
        ++work;
        ++step_probes;
        const int saved = budgets[c];
        budgets[c] = step;
        const auto t = throughput_of(budgets);
        budgets[c] = saved;
        if (t && *t > chosen_throughput) {
          chosen_throughput = *t;
          chosen = c;
          chosen_budget = step;
        }
      }
    }
    if (chosen < 0) break;  // no candidate accepts another processor
    free -= chosen_budget - budgets[chosen] - 1;  // loop itself deducts 1
    budgets[chosen] = chosen_budget;
    current_throughput = chosen_throughput;
    if (current_throughput > best.throughput) {
      best.budgets = budgets;
      best.throughput = current_throughput;
    }
  }

  // Optional Theorem-2 backtracking: exhaustive search in a +/-radius box
  // around the best greedy budgets.
  if (options_.limited_backtracking && !timed_out) {
    int radius = options_.backtrack_radius;
    auto combos_for = [&](int r) {
      std::uint64_t combos = 1;
      for (int i = 0; i < l; ++i) {
        combos *= static_cast<std::uint64_t>(2 * r + 1);
        if (combos > options_.max_backtrack_combos) break;
      }
      return combos;
    };
    while (radius > 0 && combos_for(radius) > options_.max_backtrack_combos) {
      --radius;
    }
    if (radius > 0) {
      std::vector<int> trial = best.budgets;
      std::vector<int> min_b(l);
      for (int i = 0; i < l; ++i) {
        const auto [first, last] = clustering[i];
        min_b[i] = *MinUsableBudget(eval, first, last, total_procs, policy,
                                    feasible);
      }
      // Depth-first enumeration of budget deltas in [-radius, radius]^l.
      auto recurse = [&](auto&& self, int idx, int used_so_far) -> void {
        if (timed_out || used_so_far > total_procs) return;
        if (idx == l) {
          if (deadline != nullptr && deadline->expired()) {
            timed_out = true;
            return;
          }
          ++work;
          ++backtrack_evals;
          const auto t = throughput_of(trial);
          if (t && *t > best.throughput) {
            best.budgets = trial;
            best.throughput = *t;
          }
          return;
        }
        const int center = best.budgets[idx];
        for (int delta = -radius; delta <= radius; ++delta) {
          const int b = center + delta;
          if (b < min_b[idx]) continue;
          trial[idx] = b;
          self(self, idx + 1, used_so_far + b);
        }
        trial[idx] = center;
      };
      const std::vector<int> anchor = best.budgets;
      trial = anchor;
      recurse(recurse, 0, 0);
    }
  }

  const auto final_mapping =
      BuildMapping(eval, clustering, best.budgets, policy, feasible);
  PIPEMAP_CHECK(final_mapping.has_value(),
                "GreedyMapper: best assignment unconfigurable");
  PIPEMAP_COUNTER_ADD("greedy.refinement_iters", refinement_iters);
  PIPEMAP_COUNTER_ADD("greedy.budget_probes", step_probes);
  PIPEMAP_COUNTER_ADD("greedy.backtrack_evals", backtrack_evals);
  MapResult result;
  result.mapping = *final_mapping;
  result.throughput = eval.Throughput(result.mapping);
  result.work = work;
  result.timed_out = timed_out;
  return result;
}

MapResult GreedyMapper::Map(const Evaluator& eval, int total_procs) const {
  const int k = eval.num_tasks();
  const ScopedMetricsEnable observe(options_.base.observe);
  PIPEMAP_TRACE_SPAN("greedy.map", "greedy", k);

  Clustering clustering = SingletonClustering(k);
  MapResult best;
  try {
    best = MapWithClustering(eval, total_procs, clustering);
  } catch (const Infeasible&) {
    // The singleton clustering may not fit a small machine even when a
    // coarser one does (module minima add up; merged modules share
    // processors). Seed from the fully merged chain instead and let the
    // split sweep refine it.
    if (!options_.base.allow_clustering) throw;
    clustering = {{0, k - 1}};
    best = MapWithClustering(eval, total_procs, clustering);
  }
  std::uint64_t work = best.work;
  const Deadline* deadline = options_.base.deadline.get();
  bool timed_out = best.timed_out;

  if (!options_.base.allow_clustering || k == 1) {
    best.work = work;
    return best;
  }

  // Merge/split sweeps (Section 4.2): each candidate clustering is scored
  // by a full greedy re-assignment, because a merge that looks unprofitable
  // at the current budgets can dominate once processors are re-balanced
  // (the budget freed by eliminating a transfer flows to the bottleneck).
  auto try_clustering = [&](const Clustering& candidate)
      -> std::optional<MapResult> {
    if (deadline != nullptr && deadline->expired()) {
      timed_out = true;
      return std::nullopt;
    }
    PIPEMAP_COUNTER_ADD("greedy.clusterings_tried", 1);
    try {
      MapResult r = MapWithClustering(eval, total_procs, candidate);
      work += r.work;
      timed_out = timed_out || r.timed_out;
      return r;
    } catch (const Infeasible&) {
      return std::nullopt;
    }
  };

  for (int pass = 0; pass < options_.clustering_passes && !timed_out;
       ++pass) {
    std::optional<Clustering> improved;
    MapResult improved_result;

    // Candidate merges of adjacent modules.
    for (int m = 0; m + 1 < static_cast<int>(clustering.size()); ++m) {
      Clustering merged = clustering;
      merged[m] = {clustering[m].first, clustering[m + 1].second};
      merged.erase(merged.begin() + m + 1);
      const auto r = try_clustering(merged);
      if (r && r->throughput > best.throughput &&
          (!improved || r->throughput > improved_result.throughput)) {
        improved = std::move(merged);
        improved_result = *r;
      }
    }
    // Candidate splits of multi-task modules.
    for (int m = 0; m < static_cast<int>(clustering.size()); ++m) {
      const auto [first, last] = clustering[m];
      for (int split = first; split < last; ++split) {
        Clustering splitted = clustering;
        splitted[m] = {first, split};
        splitted.insert(splitted.begin() + m + 1, {split + 1, last});
        const auto r = try_clustering(splitted);
        if (r && r->throughput > best.throughput &&
            (!improved || r->throughput > improved_result.throughput)) {
          improved = std::move(splitted);
          improved_result = *r;
        }
      }
    }

    if (!improved) break;
    clustering = std::move(*improved);
    best = std::move(improved_result);
  }

  best.work = work;
  best.timed_out = timed_out;
  return best;
}

}  // namespace pipemap
