// Diagnostics: do the paper's theorem preconditions hold for a chain?
//
// The greedy mapper's optimality guarantees are conditional:
//   * Theorem 1 — the bottleneck-only greedy is optimal when communication
//     time increases monotonically with the processor counts involved;
//   * Theorem 2 — the neighbourhood greedy over-allocates at most two
//     processors when (1) all cost functions are (discretely) convex and
//     (2) computation dominates communication (delta > 4 * delta_c);
//   * Section 3.2 — maximal replication is optimal when no cost function
//     is superlinear (adding a processor to a k-processor group improves
//     time by at most a factor k/(k+1)).
//
// The paper notes these "may be difficult to verify"; with a cost model in
// hand they are mechanical. A mapping tool should tell its user which
// guarantees apply — this module does that.
#pragma once

#include <string>

#include "core/evaluator.h"

namespace pipemap {

/// Outcome of one precondition check: whether it holds everywhere over the
/// probed range, and how often it was violated.
struct ConditionReport {
  bool holds = true;
  std::size_t checks = 0;
  std::size_t violations = 0;
  /// Description of the first violation found (empty when none).
  std::string first_violation;

  double violation_rate() const {
    return checks == 0 ? 0.0
                       : static_cast<double>(violations) / checks;
  }
};

struct ChainDiagnostics {
  /// Theorem 1: every communication function is monotonically increasing
  /// in each processor-count argument.
  ConditionReport comm_monotone;
  /// Theorem 2, condition 1: execution and communication functions are
  /// discretely convex in each argument.
  ConditionReport convex;
  /// Theorem 2, condition 2: the computation-time improvement from one
  /// more processor exceeds four times the best communication-time
  /// improvement (delta > 4 * delta_c).
  ConditionReport computation_dominates;
  /// Section 3.2: no cost function improves superlinearly with an added
  /// processor (f(p+1) >= f(p) * p / (p+1)).
  ConditionReport non_superlinear;

  /// True iff Theorem 1's guarantee applies.
  bool Theorem1Applies() const { return comm_monotone.holds; }
  /// True iff Theorem 2's guarantee applies.
  bool Theorem2Applies() const {
    return convex.holds && computation_dominates.holds;
  }
  /// True iff the maximal-replication rule is provably optimal.
  bool MaximalReplicationSafe() const { return non_superlinear.holds; }

  /// Multi-line human-readable summary.
  std::string Summary() const;
};

/// Probes every cost function of `eval`'s chain over processor counts
/// 1..eval.max_procs() (pair functions on a subsampled grid for large P)
/// and reports which preconditions hold.
ChainDiagnostics DiagnoseChain(const Evaluator& eval);

}  // namespace pipemap
