#include "core/dp_engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/deadline.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/tracer.h"

namespace pipemap::detail {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backpointer layout: L_prev (6 bits) | b_prev (13 bits) | pp_prev (13 bits).
// L_prev == 0 marks a first-module state.
std::uint32_t PackBp(int l_prev, int b_prev, int pp_prev) {
  assert(l_prev >= 0 && l_prev <= 63);
  assert(b_prev >= 0 && b_prev <= 8191);
  assert(pp_prev >= 0 && pp_prev <= 8191);
  return (static_cast<std::uint32_t>(l_prev) << 26) |
         (static_cast<std::uint32_t>(b_prev) << 13) |
         static_cast<std::uint32_t>(pp_prev);
}
constexpr int BpLen(std::uint32_t bp) { return static_cast<int>(bp >> 26); }
constexpr int BpBudget(std::uint32_t bp) {
  return static_cast<int>((bp >> 13) & 0x1fff);
}
constexpr int BpPrevProcs(std::uint32_t bp) {
  return static_cast<int>(bp & 0x1fff);
}

/// One DP stage: all states whose last module ends at task `j` and has
/// length `L`. States are indexed by (p_used, budget, prev_instance_procs).
struct Stage {
  std::vector<double> value;  // kInf = unreachable
  std::vector<std::uint32_t> bp;
  /// row_live[pu] != 0 iff some (pu, b, pp) cell holds a finite value.
  /// Written with relaxed atomics: concurrent writers only ever store 1,
  /// and readers consume the flags after the writing sweep has joined.
  std::vector<std::atomic<char>> row_live;
  bool allocated = false;
};

struct StageGrid {
  int k = 0;
  std::vector<Stage> stages;  // indexed j * k + (L - 1)

  Stage& At(int j, int len) { return stages[j * k + (len - 1)]; }
};

/// Best terminal state, totally ordered by (total, pu, b, pp) so parallel
/// row sweeps can merge per-worker candidates into exactly the state the
/// serial sweep would keep (the first one reaching the minimum in
/// (stage, pu, b, pp) order), independent of arrival order.
struct BestTerminal {
  double total = kInf;
  int j = -1, len = -1, pu = -1, b = -1, pp = -1;

  /// True when `other` (from the same stage) must replace this candidate.
  bool WorseThan(const BestTerminal& other) const {
    if (other.total != total) return other.total < total;
    if (other.pu != pu) return other.pu < pu;
    if (other.b != b) return other.b < b;
    return other.pp < pp;
  }
};

}  // namespace

ModuleConfig LatencyConfig(const Evaluator& eval, int first, int last,
                           int budget, double response_cap,
                           const ProcPredicate& feasible) {
  const int min_p = eval.MinProcs(first, last);
  if (budget < min_p || budget < 1 || min_p >= kInfeasibleProcs) return {};

  auto feasible_procs = [&](int replicas) {
    const int start = budget / replicas;
    if (!feasible) return start >= min_p ? start : 0;
    for (int p = start; p >= min_p; --p) {
      if (feasible(p)) return p;
    }
    return 0;
  };

  // With no throughput cap, replication is pointless for latency (it only
  // burns budget that narrower modules could use); pin replicas to 1.
  const bool replicable =
      eval.Replicable(first, last) && std::isfinite(response_cap);
  const int max_r = replicable ? budget / min_p : 1;
  ModuleConfig best;
  double best_body = kInf;
  for (int r = 1; r <= max_r; ++r) {
    const int procs = feasible_procs(r);
    if (procs == 0) continue;
    // For a given instance size, the maximal replica count within the
    // budget never hurts: latency depends only on the instance size, and
    // more replicas only loosen the throughput cap.
    const int replicas = replicable ? budget / procs : 1;
    const double body = eval.Body(first, last, procs);
    if (body / replicas > response_cap) continue;
    if (body < best_body ||
        (body == best_body && best.valid && replicas > best.replicas)) {
      best_body = body;
      best = {replicas, procs, true};
    }
  }
  return best;
}

namespace {

/// Everything RunChainDp shares between its serial scaffolding and the
/// parallel row sweeps. The range tables live behind a shared_ptr so a
/// warm start can hand them to the next solve.
struct DpContext {
  const Evaluator* eval;
  int k;
  int cap;
  int max_len;
  bool path_sum;
  double response_cap;
  std::shared_ptr<DpRangeTables> tables;

  std::size_t RangeIndex(int first, int last) const {
    return static_cast<std::size_t>(first) * k + last;
  }
  std::size_t StateIndex(int p_used, int budget, int prev_procs) const {
    return (static_cast<std::size_t>(p_used) * (cap + 1) + budget) *
               (cap + 1) +
           prev_procs;
  }
  const std::vector<ModuleConfig>& Cfgs(int first, int last) const {
    return tables->cfg[RangeIndex(first, last)];
  }
  int MinBudget(int first, int last) const {
    return tables->min_budget[RangeIndex(first, last)];
  }
};

/// Objective value of a fully specified clustering under the DP's exact
/// aggregation and response-cap rules; kInf when any module violates the
/// cap or lacks a valid configuration. Used to seed the dominance-pruning
/// threshold with a feasible incumbent, so the optimistic bounds have
/// something to beat from the first stage onward (the DP itself reaches
/// terminal states only at the end of the sweep).
double EvaluateClustering(const DpContext& ctx,
                          const std::vector<std::pair<int, int>>& modules,
                          const std::vector<int>& budgets) {
  const Evaluator& eval = *ctx.eval;
  const int l = static_cast<int>(modules.size());
  // Every module's configuration must be valid before any is used: the
  // communication terms below read the NEIGHBOR configs, so a trailing
  // invalid module (procs = 0) would otherwise reach ECom before its own
  // iteration rejects it. A warm-start incumbent carried across frontier
  // floors can legitimately land here with some modules invalid under the
  // tighter floor's tables.
  for (int i = 0; i < l; ++i) {
    if (!ctx.Cfgs(modules[i].first, modules[i].second)[budgets[i]].valid) {
      return kInf;
    }
  }
  double total = 0.0;
  for (int i = 0; i < l; ++i) {
    const auto [first, last] = modules[i];
    const ModuleConfig& cfg = ctx.Cfgs(first, last)[budgets[i]];
    const double body = eval.Body(first, last, cfg.procs);
    double in_com = 0.0;
    if (i > 0) {
      const ModuleConfig& prev =
          ctx.Cfgs(modules[i - 1].first, modules[i - 1].second)[budgets[i - 1]];
      in_com = eval.ECom(first - 1, prev.procs, cfg.procs);
    }
    double out_com = 0.0;
    if (i + 1 < l) {
      const ModuleConfig& next =
          ctx.Cfgs(modules[i + 1].first, modules[i + 1].second)[budgets[i + 1]];
      out_com = eval.ECom(last, cfg.procs, next.procs);
    }
    // Mirror the DP's per-module cap test exactly: the terminal module is
    // charged in + body, interior modules in + body + out.
    const double resp = (in_com + body + out_com) / cfg.replicas;
    if (resp > ctx.response_cap) return kInf;
    if (ctx.path_sum) {
      total += body + out_com;
    } else {
      total = std::max(total, resp);
    }
  }
  return total;
}

/// A feasible upper bound on the optimum together with the mapping that
/// achieves it. The value tightens dominance pruning; the mapping is what a
/// deadline-interrupted solve returns when the sweep has not yet reached a
/// better terminal state (the incumbent-on-timeout guarantee).
struct Incumbent {
  double value = kInf;
  Mapping mapping;
};

/// Materializes the Mapping a clustering + budget split induces under the
/// current tables. Only meaningful when EvaluateClustering returned a
/// finite value, which guarantees every configuration is valid.
Mapping MappingFromClustering(const DpContext& ctx,
                              const std::vector<std::pair<int, int>>& modules,
                              const std::vector<int>& budgets) {
  Mapping mapping;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto [first, last] = modules[i];
    const ModuleConfig& cfg = ctx.Cfgs(first, last)[budgets[i]];
    mapping.modules.push_back(
        ModuleAssignment{first, last, cfg.replicas, cfg.procs});
  }
  return mapping;
}

/// Cheap feasible incumbent for dominance pruning: the whole chain as one
/// module (when clustering is allowed) and a singleton clustering whose
/// leftover processors are dealt greedily to the module with the worst
/// effective body time. Any feasible value is a valid upper bound on the
/// optimum; quality only affects how much gets pruned.
Incumbent IncumbentBound(const DpContext& ctx) {
  const Evaluator& eval = *ctx.eval;
  Incumbent best;
  auto offer = [&](const std::vector<std::pair<int, int>>& modules,
                   const std::vector<int>& budgets) {
    const double value = EvaluateClustering(ctx, modules, budgets);
    if (value < best.value) {
      best.value = value;
      best.mapping = MappingFromClustering(ctx, modules, budgets);
    }
  };

  if (ctx.max_len >= ctx.k) {
    offer({{0, ctx.k - 1}}, {ctx.cap});
  }

  std::vector<std::pair<int, int>> singles;
  std::vector<int> budgets;
  long long used = 0;
  for (int t = 0; t < ctx.k; ++t) {
    const int mb = ctx.MinBudget(t, t);
    if (mb >= kInfeasibleProcs || mb > ctx.cap) return best;
    singles.emplace_back(t, t);
    budgets.push_back(mb);
    used += mb;
  }
  if (used > ctx.cap) return best;
  for (long long leftover = ctx.cap - used; leftover > 0; --leftover) {
    // Give the next processor to the module whose effective body improves
    // the bottleneck the most; ties go to the earliest module so the
    // incumbent stays deterministic.
    int target = -1;
    double worst = -kInf;
    for (int t = 0; t < ctx.k; ++t) {
      if (budgets[t] + 1 > ctx.cap ||
          !ctx.Cfgs(t, t)[budgets[t] + 1].valid) {
        continue;
      }
      const ModuleConfig& cfg = ctx.Cfgs(t, t)[budgets[t]];
      const double score = eval.Body(t, t, cfg.procs) / cfg.replicas;
      if (score > worst) {
        worst = score;
        target = t;
      }
    }
    if (target < 0) break;
    ++budgets[target];
  }
  offer(singles, budgets);
  return best;
}

/// Bound from a caller-supplied incumbent mapping (warm start): the value
/// of the incumbent's clustering and budget split under the CURRENT
/// problem's configuration rules. Using the current tables (rather than
/// the incumbent's recorded objective) keeps the bound safe when the
/// problem moved — an adjacent floor or budget — since the re-evaluated
/// value is achievable here or kInf. Empty (value kInf) when the incumbent
/// does not fit the current constraints at all.
Incumbent IncumbentFromMapping(const DpContext& ctx, const Mapping& mapping) {
  Incumbent out;
  if (!mapping.IsValidFor(ctx.k)) return out;
  std::vector<std::pair<int, int>> modules;
  std::vector<int> budgets;
  long long used = 0;
  for (const ModuleAssignment& m : mapping.modules) {
    const int len = m.num_tasks();
    const int budget = m.total_procs();
    if (len > ctx.max_len || budget < 1 || budget > ctx.cap) return out;
    modules.emplace_back(m.first_task, m.last_task);
    budgets.push_back(budget);
    used += budget;
  }
  if (used > ctx.cap) return out;
  out.value = EvaluateClustering(ctx, modules, budgets);
  if (out.value < kInf) {
    out.mapping = MappingFromClustering(ctx, modules, budgets);
  }
  return out;
}

/// Warm-start table-pool size. Three distinct table keys are live during a
/// frontier sweep (policy/bottleneck shares a key with policy/path-sum;
/// latency-body at the current floor plus the unconstrained latency-body
/// tables make three); one spare absorbs an interleaved odd solve.
constexpr std::size_t kMaxWarmTables = 4;

/// True when previously built range tables answer the current problem:
/// same evaluator and configuration rules, budgets tabulated at least as
/// far as this solve needs. A larger `tables->cap` is fine — the DP only
/// reads budgets up to its own cap, and per-budget configurations do not
/// depend on the cap they were tabulated under.
bool TablesUsable(const DpRangeTables& tables, const Evaluator* eval,
                  int cap, int max_len, ReplicationPolicy policy,
                  DpConfigRule rule, double response_cap,
                  bool has_predicate) {
  if (tables.eval != eval || tables.cap < cap || tables.max_len != max_len ||
      tables.rule != rule || tables.has_predicate != has_predicate) {
    return false;
  }
  if (rule == DpConfigRule::kPolicy) return tables.policy == policy;
  return tables.policy == policy && tables.response_cap == response_cap;
}

}  // namespace

DpSolution RunChainDp(const DpProblem& problem) {
  PIPEMAP_CHECK(problem.eval != nullptr, "RunChainDp: evaluator required");
  const Evaluator& eval = *problem.eval;
  const int k = eval.num_tasks();
  const int cap = problem.total_procs;
  const MapperOptions& options = problem.options;
  PIPEMAP_CHECK(cap >= 1, "RunChainDp: need at least one processor");
  PIPEMAP_CHECK(cap <= 8191, "RunChainDp: processor count exceeds"
                             " backpointer encoding (8191)");
  PIPEMAP_CHECK(k <= 63, "RunChainDp: chain length exceeds backpointer"
                         " encoding (63)");
  PIPEMAP_CHECK(problem.max_effective_response > 0.0,
                "RunChainDp: response cap must be positive");
  const ReplicationPolicy policy = options.replication;
  const int num_threads = ThreadPool::ResolveThreads(options.num_threads);
  const Deadline* deadline = options.deadline.get();

  const ScopedMetricsEnable observe(options.observe);
  PIPEMAP_TRACE_SPAN("dp.run", "dp", k);
  PIPEMAP_COUNTER_ADD("dp.runs", 1);

  DpContext ctx;
  ctx.eval = &eval;
  ctx.k = k;
  ctx.cap = cap;
  ctx.max_len = options.allow_clustering ? k : 1;
  ctx.path_sum = problem.objective == DpObjective::kPathSum;
  ctx.response_cap = problem.max_effective_response;
  const int max_len = ctx.max_len;
  const bool path_sum = ctx.path_sum;
  const double response_cap = ctx.response_cap;

  // Per-module-range configuration tables: cfg[(first,last)][budget], the
  // smallest usable budget per range, and the minimal suffix budgets. A
  // warm start whose tables match this problem skips the whole
  // tabulation; otherwise the tables are built here (ranges are
  // independent, so they tabulate in parallel; each worker writes only
  // its own ranges' cfg and min_budget slots) and handed to the warm
  // state for the next solve.
  const std::shared_ptr<WarmStartState> warm = options.warm;
  bool reused_tables = false;
  if (warm) {
    for (std::size_t i = 0; i < warm->tables.size(); ++i) {
      if (warm->tables[i] &&
          TablesUsable(*warm->tables[i], &eval, cap, max_len, policy,
                       problem.config_rule, response_cap,
                       static_cast<bool>(options.proc_feasible))) {
        ctx.tables = warm->tables[i];
        // Move to front: most recently used survives pool eviction.
        warm->tables.erase(warm->tables.begin() +
                           static_cast<std::ptrdiff_t>(i));
        warm->tables.insert(warm->tables.begin(), ctx.tables);
        reused_tables = true;
        ++warm->tables_reused;
        PIPEMAP_COUNTER_ADD("dp.warm_tables_reused", 1);
        break;
      }
    }
  }
  if (!reused_tables) {
    ctx.tables = std::make_shared<DpRangeTables>();
    DpRangeTables& tables = *ctx.tables;
    tables.eval = &eval;
    tables.cap = cap;
    tables.max_len = max_len;
    tables.policy = policy;
    tables.rule = problem.config_rule;
    tables.response_cap = response_cap;
    tables.has_predicate = static_cast<bool>(options.proc_feasible);
    tables.cfg.resize(static_cast<std::size_t>(k) * k);
    tables.min_budget.assign(static_cast<std::size_t>(k) * k,
                             kInfeasibleProcs);
    std::vector<std::pair<int, int>> ranges;
    for (int first = 0; first < k; ++first) {
      for (int last = first; last < std::min(k, first + max_len); ++last) {
        ranges.emplace_back(first, last);
      }
    }
    {
      PIPEMAP_TRACE_SPAN("dp.cfg_cache", "dp",
                         static_cast<std::int64_t>(ranges.size()));
      PIPEMAP_COUNTER_ADD("dp.cfg_ranges",
                          static_cast<std::uint64_t>(ranges.size()));
      ParallelFor(
          num_threads, static_cast<std::int64_t>(ranges.size()),
          ParallelSchedule::kDynamic, 1,
          [&](int, std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i) {
              const auto [first, last] = ranges[i];
              auto& cfgs = tables.cfg[ctx.RangeIndex(first, last)];
              cfgs.assign(cap + 1, ModuleConfig{});
              for (int b = 1; b <= cap; ++b) {
                cfgs[b] =
                    problem.config_rule == DpConfigRule::kLatencyBody
                        ? LatencyConfig(eval, first, last, b, response_cap,
                                        options.proc_feasible)
                        : ConfigureConstrained(eval, first, last, b, policy,
                                               options.proc_feasible);
                if (cfgs[b].valid &&
                    tables.min_budget[ctx.RangeIndex(first, last)] > b) {
                  tables.min_budget[ctx.RangeIndex(first, last)] = b;
                }
              }
            }
          });
    }

    // Minimal total budget needed to map tasks t..k-1 (for pruning and to
    // detect infeasibility early).
    tables.suffix_min.assign(k + 1, 0);
    for (int t = k - 1; t >= 0; --t) {
      long long best = std::numeric_limits<long long>::max() / 4;
      for (int last = t; last < std::min(k, t + max_len); ++last) {
        const int mb = tables.min_budget[ctx.RangeIndex(t, last)];
        if (mb >= kInfeasibleProcs) continue;
        best = std::min(
            best, static_cast<long long>(mb) + tables.suffix_min[last + 1]);
      }
      tables.suffix_min[t] = best;
    }
    if (warm) {
      warm->tables.insert(warm->tables.begin(), ctx.tables);
      if (warm->tables.size() > kMaxWarmTables) {
        warm->tables.resize(kMaxWarmTables);
      }
      ++warm->tables_built;
    }
  }
  const std::vector<long long>& suffix_min = ctx.tables->suffix_min;
  if (suffix_min[0] > cap) {
    throw Infeasible(
        "RunChainDp: not enough processors to satisfy module memory minima");
  }

  // Upper bound on the optimum from cheap heuristic mappings, tightened
  // by the warm start's incumbent when one fits the current constraints.
  // Dominance pruning skips cells whose optimistic bound strictly exceeds
  // the threshold, so a state that ties or beats the incumbent is never
  // lost and the returned mapping is identical with pruning off — and
  // therefore identical warm or cold.
  Incumbent incumbent = IncumbentBound(ctx);
  bool seeded_incumbent = false;
  if (warm && warm->incumbent) {
    Incumbent seeded = IncumbentFromMapping(ctx, *warm->incumbent);
    if (seeded.value < incumbent.value) {
      incumbent = std::move(seeded);
      seeded_incumbent = true;
      ++warm->incumbents_seeded;
      PIPEMAP_COUNTER_ADD("dp.warm_incumbents_seeded", 1);
    }
  }

  StageGrid grid;
  grid.k = k;
  grid.stages.resize(static_cast<std::size_t>(k) * k);
  const std::size_t block_states =
      static_cast<std::size_t>(cap + 1) * (cap + 1) * (cap + 1);
  const std::size_t bytes_per_block =
      block_states * (sizeof(double) + sizeof(std::uint32_t));
  std::size_t allocated_bytes = 0;
  auto ensure_stage = [&](int j, int len) -> Stage& {
    Stage& s = grid.At(j, len);
    if (!s.allocated) {
      allocated_bytes += bytes_per_block;
      if (allocated_bytes > options.max_table_bytes) {
        throw ResourceLimit(
            "RunChainDp: DP table exceeds max_table_bytes; reduce P or use "
            "GreedyMapper");
      }
      s.value.assign(block_states, kInf);
      s.bp.assign(block_states, 0);
      s.row_live = std::vector<std::atomic<char>>(cap + 1);
      s.allocated = true;
    }
    return s;
  };
  auto state_index = [&ctx](int p_used, int budget, int prev_procs) {
    return ctx.StateIndex(p_used, budget, prev_procs);
  };

  // Seed: first module [0 .. len-1] with budget b.
  for (int len = 1; len <= std::min(max_len, k); ++len) {
    const int last = len - 1;
    const auto& cfgs = ctx.Cfgs(0, last);
    const long long suffix_needed = suffix_min[last + 1];
    for (int b = 1; b <= cap; ++b) {
      if (!cfgs[b].valid) continue;
      if (b + suffix_needed > cap) break;
      Stage& s = ensure_stage(last, len);
      const std::size_t idx = state_index(b, b, 0);
      if (s.value[idx] > 0.0) {
        s.value[idx] = 0.0;
        s.bp[idx] = PackBp(0, 0, 0);
        s.row_live[b].store(1, std::memory_order_relaxed);
      }
    }
  }

  BestTerminal best;
  std::uint64_t work = 0;
  std::uint64_t pruned_cells = 0;

  // Per-worker reduction slots for the parallel row sweeps.
  std::vector<BestTerminal> worker_best(num_threads);
  std::vector<std::uint64_t> worker_work(num_threads, 0);
  std::vector<std::uint64_t> worker_pruned(num_threads, 0);

  // Cooperative deadline: any worker observing expiry raises the shared
  // flag; the other workers bail at their next row boundary and the stage
  // loop stops. The partially swept stage's candidates are discarded (a
  // partial sweep is not reproducible), so `best` only ever reflects fully
  // completed stages and its backpointer chain is intact.
  std::atomic<bool> deadline_hit{false};
  bool aborted = false;

  // Process stages in increasing end-task order so transitions always move
  // forward.
  for (int j = 0; j < k && !aborted; ++j) {
    for (int len = 1; len <= std::min(max_len, j + 1); ++len) {
      if (deadline != nullptr && deadline->ExpiredNow()) {
        aborted = true;
        break;
      }
      Stage& s = grid.At(j, len);
      if (!s.allocated) continue;
      const int first = j - len + 1;
      const auto& cfgs = ctx.Cfgs(first, j);
      const bool is_last_stage = (j == k - 1);

      // Row-level suffix prune: a state using pu processors still needs
      // suffix_min[j+1] more, whatever module comes next. Collect the rows
      // that can both complete and hold at least one reachable state.
      const long long row_suffix = is_last_stage ? 0 : suffix_min[j + 1];
      std::vector<int> live_rows;
      for (int pu = 1; pu <= cap; ++pu) {
        if (pu + row_suffix > cap) break;
        if (s.row_live[pu].load(std::memory_order_relaxed)) {
          live_rows.push_back(pu);
        }
      }
      if (live_rows.empty()) continue;

      PIPEMAP_TRACE_SPAN("dp.stage", "dp", j);
      PIPEMAP_COUNTER_ADD("dp.stages_swept", 1);
      PIPEMAP_HISTOGRAM_RECORD("dp.stage_live_rows",
                               static_cast<double>(live_rows.size()));

      // Pre-allocate every stage this sweep can write, so the parallel
      // rows never mutate the grid. Reachability matches the per-row
      // budget test at the smallest live row (the easiest to extend).
      struct Target {
        Stage* stage = nullptr;
        const std::vector<ModuleConfig>* cfgs = nullptr;
        long long tail_needed = 0;
        int next_min = kInfeasibleProcs;
        int next_last = 0;
      };
      std::vector<Target> targets;
      if (!is_last_stage) {
        const int min_live_pu = live_rows.front();
        for (int len2 = 1; len2 <= std::min(max_len, k - 1 - j); ++len2) {
          const int next_last = j + len2;
          Target t;
          t.next_last = next_last;
          t.next_min = ctx.MinBudget(j + 1, next_last);
          t.tail_needed = suffix_min[next_last + 1];
          if (t.next_min < kInfeasibleProcs &&
              min_live_pu + t.next_min + t.tail_needed <= cap) {
            t.stage = &ensure_stage(next_last, len2);
            t.cfgs = &ctx.Cfgs(j + 1, next_last);
          }
          targets.push_back(t);
        }
      }

      // The dominance threshold stays frozen for the whole stage: `best`
      // only advances on terminal stages, which have no outgoing
      // transitions, so every thread count sees the same table contents.
      // Terminal rows additionally prune against their worker-local best.
      const double frozen_threshold = std::min(incumbent.value, best.total);

      for (int w = 0; w < num_threads; ++w) {
        worker_best[w] = BestTerminal{};
      }

      auto sweep_rows = [&](int worker, std::int64_t row_begin,
                            std::int64_t row_end) {
        BestTerminal& local_best = worker_best[worker];
        std::uint64_t local_work = 0;
        std::uint64_t local_pruned = 0;
        for (std::int64_t row = row_begin; row < row_end; ++row) {
          if (deadline != nullptr &&
              (deadline_hit.load(std::memory_order_relaxed) ||
               deadline->expired())) {
            deadline_hit.store(true, std::memory_order_relaxed);
            break;
          }
          const int pu = live_rows[static_cast<std::size_t>(row)];
          for (int b = 1; b <= pu; ++b) {
            const ModuleConfig& cfg = cfgs[b];
            if (!cfg.valid) continue;
            const std::size_t base = state_index(pu, b, 0);

            // Dominance prune: the best completion through (pu, b, *) is at
            // least the cheapest incoming value combined with this module's
            // body at zero boundary communication. Strictly worse than the
            // threshold means no completion can beat or tie the optimum.
            double v_min = kInf;
            for (int pp = 0; pp <= cap; ++pp) {
              v_min = std::min(v_min, s.value[base + pp]);
            }
            if (v_min == kInf) continue;
            const double body = eval.Body(first, j, cfg.procs);
            const double cell_bound =
                path_sum ? v_min + body
                         : std::max(v_min, body / cfg.replicas);
            if (cell_bound > std::min(frozen_threshold, local_best.total)) {
              ++local_pruned;
              continue;
            }

            for (int pp = 0; pp <= cap; ++pp) {
              const double v = s.value[base + pp];
              if (v == kInf) continue;
              const double in_com =
                  pp > 0 ? eval.ECom(first - 1, pp, cfg.procs) : 0.0;

              if (is_last_stage) {
                ++local_work;
                const double resp = (in_com + body) / cfg.replicas;
                if (resp > response_cap) continue;
                // Path-sum counts the body only: the incoming transfer was
                // charged when the previous module completed.
                const double total =
                    path_sum ? v + body : std::max(v, resp);
                if (total < local_best.total) {
                  local_best = BestTerminal{total, j, len, pu, b, pp};
                }
                continue;
              }

              // Extend with the next module [j+1 .. j+len2] and budget b2.
              for (const Target& t : targets) {
                if (t.stage == nullptr ||
                    pu + t.next_min + t.tail_needed > cap) {
                  continue;
                }
                Stage& ns = *t.stage;
                for (int b2 = 1; pu + b2 <= cap; ++b2) {
                  const ModuleConfig& cfg2 = (*t.cfgs)[b2];
                  if (!cfg2.valid) continue;
                  if (pu + b2 + t.tail_needed > cap) break;
                  ++local_work;
                  const double out_com = eval.ECom(j, cfg.procs, cfg2.procs);
                  const double resp =
                      (in_com + body + out_com) / cfg.replicas;
                  if (resp > response_cap) continue;
                  const double nv =
                      path_sum ? v + body + out_com : std::max(v, resp);
                  // Rows of the destination stage are owned exclusively:
                  // the source row of a write to (pu + b2, b2, *) is
                  // recoverable as pu = (pu + b2) - b2, so no two source
                  // rows ever touch the same destination cell.
                  const std::size_t nidx =
                      state_index(pu + b2, b2, cfg.procs);
                  if (nv < ns.value[nidx]) {
                    ns.value[nidx] = nv;
                    ns.bp[nidx] = PackBp(len, b, pp);
                    ns.row_live[pu + b2].store(1, std::memory_order_relaxed);
                  }
                }
              }
            }
          }
        }
        worker_work[worker] += local_work;
        worker_pruned[worker] += local_pruned;
      };

      // Static partitioning keeps each worker's row set — and therefore the
      // terminal-stage pruning decisions and work counters — reproducible
      // for a given thread count. The reduction below is order-independent,
      // so dynamic scheduling would still yield identical mappings; static
      // costs little here because live rows have similar weight.
      ParallelFor(num_threads,
                  static_cast<std::int64_t>(live_rows.size()),
                  ParallelSchedule::kStatic, 1, sweep_rows);

      if (deadline_hit.load(std::memory_order_relaxed)) {
        aborted = true;
        break;
      }

      for (int w = 0; w < num_threads; ++w) {
        if (worker_best[w].total == kInf) continue;
        // Candidates from this stage beat the incumbent only strictly, and
        // among themselves the smallest (pu, b, pp) wins ties — exactly the
        // state the serial sweep reaches first.
        if (worker_best[w].total < best.total ||
            (worker_best[w].total == best.total && best.j == j &&
             best.len == len && best.WorseThan(worker_best[w]))) {
          best = worker_best[w];
        }
      }
    }
  }
  for (int w = 0; w < num_threads; ++w) {
    work += worker_work[w];
    pruned_cells += worker_pruned[w];
  }
  PIPEMAP_COUNTER_ADD("dp.cells_evaluated", work);
  PIPEMAP_COUNTER_ADD("dp.cells_pruned", pruned_cells);
  PIPEMAP_GAUGE_MAX("dp.table_bytes", static_cast<double>(allocated_bytes));

  const bool timed_out = aborted;
  if (timed_out) PIPEMAP_COUNTER_ADD("dp.deadline_expirations", 1);
  if (!timed_out && best.j < 0) {
    throw Infeasible("RunChainDp: no valid mapping found");
  }
  // On timeout, return whichever is better: the best terminal of the
  // completed stages or the heuristic/warm incumbent. The incumbent value
  // was the pruning threshold, so a surviving terminal never exceeds it.
  const bool use_terminal =
      best.j >= 0 && !(timed_out && incumbent.value < best.total);
  if (!use_terminal && incumbent.value == kInf) {
    throw ResourceLimit(
        "RunChainDp: deadline expired before any feasible incumbent was "
        "found");
  }

  DpSolution solution;
  if (use_terminal) {
    // Reconstruct module list by walking backpointers from the best
    // terminal state.
    std::vector<ModuleAssignment> reversed;
    int j = best.j, len = best.len, pu = best.pu, b = best.b, pp = best.pp;
    while (true) {
      const int first = j - len + 1;
      const ModuleConfig& cfg = ctx.Cfgs(first, j)[b];
      reversed.push_back(ModuleAssignment{first, j, cfg.replicas, cfg.procs});
      const Stage& s = grid.At(j, len);
      const std::uint32_t bp = s.bp[state_index(pu, b, pp)];
      const int l_prev = BpLen(bp);
      if (l_prev == 0) break;
      const int b_prev = BpBudget(bp);
      const int pp_prev = BpPrevProcs(bp);
      j = first - 1;
      pu -= b;
      len = l_prev;
      b = b_prev;
      pp = pp_prev;
    }
    std::reverse(reversed.begin(), reversed.end());
    solution.mapping.modules = std::move(reversed);
    solution.objective_value = best.total;
  } else {
    solution.mapping = std::move(incumbent.mapping);
    solution.objective_value = incumbent.value;
  }
  solution.work = work;
  solution.pruned_cells = pruned_cells;
  solution.reused_tables = reused_tables;
  solution.seeded_incumbent = seeded_incumbent;
  solution.timed_out = timed_out;
  if (warm) warm->incumbent = solution.mapping;
  return solution;
}

}  // namespace pipemap::detail
