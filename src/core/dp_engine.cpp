#include "core/dp_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.h"

namespace pipemap::detail {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backpointer layout: L_prev (6 bits) | b_prev (13 bits) | pp_prev (13 bits).
// L_prev == 0 marks a first-module state.
constexpr std::uint32_t PackBp(int l_prev, int b_prev, int pp_prev) {
  return (static_cast<std::uint32_t>(l_prev) << 26) |
         (static_cast<std::uint32_t>(b_prev) << 13) |
         static_cast<std::uint32_t>(pp_prev);
}
constexpr int BpLen(std::uint32_t bp) { return static_cast<int>(bp >> 26); }
constexpr int BpBudget(std::uint32_t bp) {
  return static_cast<int>((bp >> 13) & 0x1fff);
}
constexpr int BpPrevProcs(std::uint32_t bp) {
  return static_cast<int>(bp & 0x1fff);
}

/// One DP stage: all states whose last module ends at task `j` and has
/// length `L`. States are indexed by (p_used, budget, prev_instance_procs).
struct Stage {
  std::vector<double> value;  // kInf = unreachable
  std::vector<std::uint32_t> bp;
  bool allocated = false;
};

struct StageGrid {
  int k = 0;
  std::vector<Stage> stages;  // indexed j * k + (L - 1)

  Stage& At(int j, int len) { return stages[j * k + (len - 1)]; }
};

}  // namespace

ModuleConfig LatencyConfig(const Evaluator& eval, int first, int last,
                           int budget, double response_cap,
                           const ProcPredicate& feasible) {
  const int min_p = eval.MinProcs(first, last);
  if (budget < min_p || budget < 1 || min_p >= kInfeasibleProcs) return {};

  auto feasible_procs = [&](int replicas) {
    const int start = budget / replicas;
    if (!feasible) return start >= min_p ? start : 0;
    for (int p = start; p >= min_p; --p) {
      if (feasible(p)) return p;
    }
    return 0;
  };

  // With no throughput cap, replication is pointless for latency (it only
  // burns budget that narrower modules could use); pin replicas to 1.
  const bool replicable =
      eval.Replicable(first, last) && std::isfinite(response_cap);
  const int max_r = replicable ? budget / min_p : 1;
  ModuleConfig best;
  double best_body = kInf;
  for (int r = 1; r <= max_r; ++r) {
    const int procs = feasible_procs(r);
    if (procs == 0) continue;
    // For a given instance size, the maximal replica count within the
    // budget never hurts: latency depends only on the instance size, and
    // more replicas only loosen the throughput cap.
    const int replicas = replicable ? budget / procs : 1;
    const double body = eval.Body(first, last, procs);
    if (body / replicas > response_cap) continue;
    if (body < best_body ||
        (body == best_body && best.valid && replicas > best.replicas)) {
      best_body = body;
      best = {replicas, procs, true};
    }
  }
  return best;
}

DpSolution RunChainDp(const DpProblem& problem) {
  PIPEMAP_CHECK(problem.eval != nullptr, "RunChainDp: evaluator required");
  const Evaluator& eval = *problem.eval;
  const int k = eval.num_tasks();
  const int cap = problem.total_procs;
  const MapperOptions& options = problem.options;
  PIPEMAP_CHECK(cap >= 1, "RunChainDp: need at least one processor");
  PIPEMAP_CHECK(cap <= 8191, "RunChainDp: processor count exceeds"
                             " backpointer encoding (8191)");
  PIPEMAP_CHECK(k <= 63, "RunChainDp: chain length exceeds backpointer"
                         " encoding (63)");
  PIPEMAP_CHECK(problem.max_effective_response > 0.0,
                "RunChainDp: response cap must be positive");
  const ReplicationPolicy policy = options.replication;
  const int max_len = options.allow_clustering ? k : 1;
  const bool path_sum = problem.objective == DpObjective::kPathSum;
  const double response_cap = problem.max_effective_response;

  // Per-module-range configuration cache: cfg[(first,last)][budget].
  // Also the smallest usable budget per range, and infinity if none.
  std::vector<std::vector<ModuleConfig>> cfg_cache(
      static_cast<std::size_t>(k) * k);
  std::vector<int> min_budget(static_cast<std::size_t>(k) * k,
                              kInfeasibleProcs);
  auto range_index = [k](int first, int last) {
    return static_cast<std::size_t>(first) * k + last;
  };
  for (int first = 0; first < k; ++first) {
    for (int last = first; last < std::min(k, first + max_len); ++last) {
      auto& cfgs = cfg_cache[range_index(first, last)];
      cfgs.assign(cap + 1, ModuleConfig{});
      for (int b = 1; b <= cap; ++b) {
        cfgs[b] = problem.config_rule == DpConfigRule::kLatencyBody
                      ? LatencyConfig(eval, first, last, b, response_cap,
                                      options.proc_feasible)
                      : ConfigureConstrained(eval, first, last, b, policy,
                                             options.proc_feasible);
        if (cfgs[b].valid && min_budget[range_index(first, last)] > b) {
          min_budget[range_index(first, last)] = b;
        }
      }
    }
  }

  // Minimal total budget needed to map tasks t..k-1 (for pruning) and to
  // detect infeasibility early.
  std::vector<long long> suffix_min(k + 1, 0);
  for (int t = k - 1; t >= 0; --t) {
    long long best = std::numeric_limits<long long>::max() / 4;
    for (int last = t; last < std::min(k, t + max_len); ++last) {
      const int mb = min_budget[range_index(t, last)];
      if (mb >= kInfeasibleProcs) continue;
      best =
          std::min(best, static_cast<long long>(mb) + suffix_min[last + 1]);
    }
    suffix_min[t] = best;
  }
  if (suffix_min[0] > cap) {
    throw Infeasible(
        "RunChainDp: not enough processors to satisfy module memory minima");
  }

  StageGrid grid;
  grid.k = k;
  grid.stages.resize(static_cast<std::size_t>(k) * k);
  const std::size_t block_states =
      static_cast<std::size_t>(cap + 1) * (cap + 1) * (cap + 1);
  const std::size_t bytes_per_block =
      block_states * (sizeof(double) + sizeof(std::uint32_t));
  std::size_t allocated_bytes = 0;
  auto ensure_stage = [&](int j, int len) -> Stage& {
    Stage& s = grid.At(j, len);
    if (!s.allocated) {
      allocated_bytes += bytes_per_block;
      if (allocated_bytes > options.max_table_bytes) {
        throw ResourceLimit(
            "RunChainDp: DP table exceeds max_table_bytes; reduce P or use "
            "GreedyMapper");
      }
      s.value.assign(block_states, kInf);
      s.bp.assign(block_states, 0);
      s.allocated = true;
    }
    return s;
  };
  auto state_index = [&](int p_used, int budget, int prev_procs) {
    return (static_cast<std::size_t>(p_used) * (cap + 1) + budget) *
               (cap + 1) +
           prev_procs;
  };

  std::uint64_t work = 0;

  // Seed: first module [0 .. len-1] with budget b.
  for (int len = 1; len <= std::min(max_len, k); ++len) {
    const int last = len - 1;
    const auto& cfgs = cfg_cache[range_index(0, last)];
    const long long suffix_needed = suffix_min[last + 1];
    for (int b = 1; b <= cap; ++b) {
      if (!cfgs[b].valid) continue;
      if (b + suffix_needed > cap) break;
      Stage& s = ensure_stage(last, len);
      const std::size_t idx = state_index(b, b, 0);
      if (s.value[idx] > 0.0) {
        s.value[idx] = 0.0;
        s.bp[idx] = PackBp(0, 0, 0);
      }
    }
  }

  double best_total = kInf;
  int best_j = -1, best_len = -1, best_pu = -1, best_b = -1, best_pp = -1;

  // Process stages in increasing end-task order so transitions always move
  // forward.
  for (int j = 0; j < k; ++j) {
    for (int len = 1; len <= std::min(max_len, j + 1); ++len) {
      Stage& s = grid.At(j, len);
      if (!s.allocated) continue;
      const int first = j - len + 1;
      const auto& cfgs = cfg_cache[range_index(first, j)];
      const bool is_last_stage = (j == k - 1);

      for (int pu = 1; pu <= cap; ++pu) {
        for (int b = 1; b <= pu; ++b) {
          const ModuleConfig& cfg = cfgs[b];
          if (!cfg.valid) continue;
          const std::size_t base = state_index(pu, b, 0);
          for (int pp = 0; pp <= cap; ++pp) {
            const double v = s.value[base + pp];
            if (v == kInf) continue;
            const double in_com =
                pp > 0 ? eval.ECom(first - 1, pp, cfg.procs) : 0.0;
            const double body = eval.Body(first, j, cfg.procs);

            if (is_last_stage) {
              ++work;
              const double resp = (in_com + body) / cfg.replicas;
              if (resp > response_cap) continue;
              // Path-sum counts the body only: the incoming transfer was
              // charged when the previous module completed.
              const double total =
                  path_sum ? v + body : std::max(v, resp);
              if (total < best_total) {
                best_total = total;
                best_j = j;
                best_len = len;
                best_pu = pu;
                best_b = b;
                best_pp = pp;
              }
              continue;
            }

            // Extend with the next module [j+1 .. j+len2] and budget b2.
            for (int len2 = 1; len2 <= std::min(max_len, k - 1 - j);
                 ++len2) {
              const int next_last = j + len2;
              const auto& next_cfgs = cfg_cache[range_index(j + 1, next_last)];
              const long long tail_needed = suffix_min[next_last + 1];
              const int next_min = min_budget[range_index(j + 1, next_last)];
              if (next_min >= kInfeasibleProcs ||
                  pu + next_min + tail_needed > cap) {
                continue;
              }
              Stage& ns = ensure_stage(next_last, len2);
              for (int b2 = 1; pu + b2 <= cap; ++b2) {
                const ModuleConfig& cfg2 = next_cfgs[b2];
                if (!cfg2.valid) continue;
                if (pu + b2 + tail_needed > cap) break;
                ++work;
                const double out_com = eval.ECom(j, cfg.procs, cfg2.procs);
                const double resp =
                    (in_com + body + out_com) / cfg.replicas;
                if (resp > response_cap) continue;
                const double nv =
                    path_sum ? v + body + out_com : std::max(v, resp);
                const std::size_t nidx = state_index(pu + b2, b2, cfg.procs);
                if (nv < ns.value[nidx]) {
                  ns.value[nidx] = nv;
                  ns.bp[nidx] = PackBp(len, b, pp);
                }
              }
            }
          }
        }
      }
    }
  }

  if (best_j < 0) {
    throw Infeasible("RunChainDp: no valid mapping found");
  }

  // Reconstruct module list by walking backpointers from the best terminal
  // state.
  std::vector<ModuleAssignment> reversed;
  int j = best_j, len = best_len, pu = best_pu, b = best_b, pp = best_pp;
  while (true) {
    const int first = j - len + 1;
    const ModuleConfig& cfg = cfg_cache[range_index(first, j)][b];
    reversed.push_back(ModuleAssignment{first, j, cfg.replicas, cfg.procs});
    const Stage& s = grid.At(j, len);
    const std::uint32_t bp = s.bp[state_index(pu, b, pp)];
    const int l_prev = BpLen(bp);
    if (l_prev == 0) break;
    const int b_prev = BpBudget(bp);
    const int pp_prev = BpPrevProcs(bp);
    j = first - 1;
    pu -= b;
    len = l_prev;
    b = b_prev;
    pp = pp_prev;
  }
  std::reverse(reversed.begin(), reversed.end());

  DpSolution solution;
  solution.mapping.modules = std::move(reversed);
  solution.objective_value = best_total;
  solution.work = work;
  return solution;
}

}  // namespace pipemap::detail
