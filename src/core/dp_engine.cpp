#include "core/dp_engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/dp_sweep_state.h"
#include "core/simd_kernels.h"
#include "support/aligned.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/tracer.h"

namespace pipemap::detail {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backpointer layout: L_prev (6 bits) | b_prev (13 bits) | slot_prev
// (13 bits). L_prev == 0 marks a first-module state. slot_prev is the rank
// of the previous module's instance processor count in the solve's slot
// universe (see below) — slot ranks are monotone in the processor count,
// so tie ordering over slots equals tie ordering over raw counts.
std::uint32_t PackBp(int l_prev, int b_prev, int slot_prev) {
  assert(l_prev >= 0 && l_prev <= 63);
  assert(b_prev >= 0 && b_prev <= 8191);
  assert(slot_prev >= 0 && slot_prev <= 8191);
  return (static_cast<std::uint32_t>(l_prev) << 26) |
         (static_cast<std::uint32_t>(b_prev) << 13) |
         static_cast<std::uint32_t>(slot_prev);
}
constexpr int BpLen(std::uint32_t bp) { return static_cast<int>(bp >> 26); }
constexpr int BpBudget(std::uint32_t bp) {
  return static_cast<int>((bp >> 13) & 0x1fff);
}
constexpr int BpPrevSlot(std::uint32_t bp) {
  return static_cast<int>(bp & 0x1fff);
}

/// Best terminal state, totally ordered by (total, pu, b, slot) so
/// parallel row sweeps can merge per-worker candidates into exactly the
/// state the serial sweep would keep (the first one reaching the minimum
/// in (stage, pu, b, slot) order), independent of arrival order.
struct BestTerminal {
  double total = kInf;
  int j = -1, len = -1, pu = -1, b = -1, slot = -1;

  /// True when `other` (from the same stage) must replace this candidate.
  bool WorseThan(const BestTerminal& other) const {
    if (other.total != total) return other.total < total;
    if (other.pu != pu) return other.pu < pu;
    if (other.b != b) return other.b < b;
    return other.slot < slot;
  }
};

}  // namespace

ModuleConfig LatencyConfig(const Evaluator& eval, int first, int last,
                           int budget, double response_cap,
                           const ProcPredicate& feasible) {
  const int min_p = eval.MinProcs(first, last);
  if (budget < min_p || budget < 1 || min_p >= kInfeasibleProcs) return {};

  auto feasible_procs = [&](int replicas) {
    const int start = budget / replicas;
    if (!feasible) return start >= min_p ? start : 0;
    for (int p = start; p >= min_p; --p) {
      if (feasible(p)) return p;
    }
    return 0;
  };

  // With no throughput cap, replication is pointless for latency (it only
  // burns budget that narrower modules could use); pin replicas to 1.
  const bool replicable =
      eval.Replicable(first, last) && std::isfinite(response_cap);
  const int max_r = replicable ? budget / min_p : 1;
  ModuleConfig best;
  double best_body = kInf;
  for (int r = 1; r <= max_r; ++r) {
    const int procs = feasible_procs(r);
    if (procs == 0) continue;
    // For a given instance size, the maximal replica count within the
    // budget never hurts: latency depends only on the instance size, and
    // more replicas only loosen the throughput cap.
    const int replicas = replicable ? budget / procs : 1;
    const double body = eval.Body(first, last, procs);
    if (body / replicas > response_cap) continue;
    if (body < best_body ||
        (body == best_body && best.valid && replicas > best.replicas)) {
      best_body = body;
      best = {replicas, procs, true};
    }
  }
  return best;
}

namespace {

/// Everything RunChainDp shares between its serial scaffolding and the
/// parallel row sweeps. The range tables live behind a shared_ptr so a
/// warm start can hand them to the next solve.
struct DpContext {
  const Evaluator* eval;
  int k;
  int cap;
  int max_len;
  bool path_sum;
  double response_cap;
  std::shared_ptr<DpRangeTables> tables;

  std::size_t RangeIndex(int first, int last) const {
    return static_cast<std::size_t>(first) * k + last;
  }
  ModuleConfig Cfg(int first, int last, int budget) const {
    return tables->Config(RangeIndex(first, last), budget);
  }
  /// Flat per-budget rows of range (first, last) — the hot loops scan
  /// these instead of materializing ModuleConfig structs.
  std::size_t CfgBase(int first, int last) const {
    return RangeIndex(first, last) *
           static_cast<std::size_t>(tables->budget_stride);
  }
  int MinBudget(int first, int last) const {
    return tables->min_budget[RangeIndex(first, last)];
  }
};

/// Objective value of a fully specified clustering under the DP's exact
/// aggregation and response-cap rules; kInf when any module violates the
/// cap or lacks a valid configuration. Used to seed the dominance-pruning
/// threshold with a feasible incumbent, so the optimistic bounds have
/// something to beat from the first stage onward (the DP itself reaches
/// terminal states only at the end of the sweep).
double EvaluateClustering(const DpContext& ctx,
                          const std::vector<std::pair<int, int>>& modules,
                          const std::vector<int>& budgets) {
  const Evaluator& eval = *ctx.eval;
  const int l = static_cast<int>(modules.size());
  // Every module's configuration must be valid before any is used: the
  // communication terms below read the NEIGHBOR configs, so a trailing
  // invalid module (procs = 0) would otherwise reach ECom before its own
  // iteration rejects it. A warm-start incumbent carried across frontier
  // floors can legitimately land here with some modules invalid under the
  // tighter floor's tables.
  for (int i = 0; i < l; ++i) {
    if (!ctx.Cfg(modules[i].first, modules[i].second, budgets[i]).valid) {
      return kInf;
    }
  }
  double total = 0.0;
  for (int i = 0; i < l; ++i) {
    const auto [first, last] = modules[i];
    const ModuleConfig cfg = ctx.Cfg(first, last, budgets[i]);
    const double body = eval.Body(first, last, cfg.procs);
    double in_com = 0.0;
    if (i > 0) {
      const ModuleConfig prev = ctx.Cfg(modules[i - 1].first,
                                        modules[i - 1].second,
                                        budgets[i - 1]);
      in_com = eval.ECom(first - 1, prev.procs, cfg.procs);
    }
    double out_com = 0.0;
    if (i + 1 < l) {
      const ModuleConfig next = ctx.Cfg(modules[i + 1].first,
                                        modules[i + 1].second,
                                        budgets[i + 1]);
      out_com = eval.ECom(last, cfg.procs, next.procs);
    }
    // Mirror the DP's per-module cap test exactly: the terminal module is
    // charged in + body, interior modules in + body + out.
    const double resp = (in_com + body + out_com) / cfg.replicas;
    if (resp > ctx.response_cap) return kInf;
    if (ctx.path_sum) {
      total += body + out_com;
    } else {
      total = std::max(total, resp);
    }
  }
  return total;
}

/// A feasible upper bound on the optimum together with the mapping that
/// achieves it. The value tightens dominance pruning; the mapping is what a
/// deadline-interrupted solve returns when the sweep has not yet reached a
/// better terminal state (the incumbent-on-timeout guarantee).
struct Incumbent {
  double value = kInf;
  Mapping mapping;
};

/// Materializes the Mapping a clustering + budget split induces under the
/// current tables. Only meaningful when EvaluateClustering returned a
/// finite value, which guarantees every configuration is valid.
Mapping MappingFromClustering(const DpContext& ctx,
                              const std::vector<std::pair<int, int>>& modules,
                              const std::vector<int>& budgets) {
  Mapping mapping;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto [first, last] = modules[i];
    const ModuleConfig cfg = ctx.Cfg(first, last, budgets[i]);
    mapping.modules.push_back(
        ModuleAssignment{first, last, cfg.replicas, cfg.procs});
  }
  return mapping;
}

/// Cheap feasible incumbent for dominance pruning: the whole chain as one
/// module (when clustering is allowed) and a singleton clustering whose
/// leftover processors are dealt greedily to the module with the worst
/// effective body time. Any feasible value is a valid upper bound on the
/// optimum; quality only affects how much gets pruned.
Incumbent IncumbentBound(const DpContext& ctx) {
  const Evaluator& eval = *ctx.eval;
  Incumbent best;
  auto offer = [&](const std::vector<std::pair<int, int>>& modules,
                   const std::vector<int>& budgets) {
    const double value = EvaluateClustering(ctx, modules, budgets);
    if (value < best.value) {
      best.value = value;
      best.mapping = MappingFromClustering(ctx, modules, budgets);
    }
  };

  if (ctx.max_len >= ctx.k) {
    offer({{0, ctx.k - 1}}, {ctx.cap});
  }

  std::vector<std::pair<int, int>> singles;
  std::vector<int> budgets;
  long long used = 0;
  for (int t = 0; t < ctx.k; ++t) {
    const int mb = ctx.MinBudget(t, t);
    if (mb >= kInfeasibleProcs || mb > ctx.cap) return best;
    singles.emplace_back(t, t);
    budgets.push_back(mb);
    used += mb;
  }
  if (used > ctx.cap) return best;
  for (long long leftover = ctx.cap - used; leftover > 0; --leftover) {
    // Give the next processor to the module whose effective body improves
    // the bottleneck the most; ties go to the earliest module so the
    // incumbent stays deterministic.
    int target = -1;
    double worst = -kInf;
    for (int t = 0; t < ctx.k; ++t) {
      if (budgets[t] + 1 > ctx.cap ||
          !ctx.Cfg(t, t, budgets[t] + 1).valid) {
        continue;
      }
      const ModuleConfig cfg = ctx.Cfg(t, t, budgets[t]);
      const double score = eval.Body(t, t, cfg.procs) / cfg.replicas;
      if (score > worst) {
        worst = score;
        target = t;
      }
    }
    if (target < 0) break;
    ++budgets[target];
  }
  offer(singles, budgets);
  return best;
}

/// Bound from a caller-supplied incumbent mapping (warm start): the value
/// of the incumbent's clustering and budget split under the CURRENT
/// problem's configuration rules. Using the current tables (rather than
/// the incumbent's recorded objective) keeps the bound safe when the
/// problem moved — an adjacent floor or budget — since the re-evaluated
/// value is achievable here or kInf. Empty (value kInf) when the incumbent
/// does not fit the current constraints at all.
Incumbent IncumbentFromMapping(const DpContext& ctx, const Mapping& mapping) {
  Incumbent out;
  if (!mapping.IsValidFor(ctx.k)) return out;
  std::vector<std::pair<int, int>> modules;
  std::vector<int> budgets;
  long long used = 0;
  for (const ModuleAssignment& m : mapping.modules) {
    const int len = m.num_tasks();
    const int budget = m.total_procs();
    if (len > ctx.max_len || budget < 1 || budget > ctx.cap) return out;
    modules.emplace_back(m.first_task, m.last_task);
    budgets.push_back(budget);
    used += budget;
  }
  if (used > ctx.cap) return out;
  out.value = EvaluateClustering(ctx, modules, budgets);
  if (out.value < kInf) {
    out.mapping = MappingFromClustering(ctx, modules, budgets);
  }
  return out;
}

/// Warm-start table-pool size. Three distinct table keys are live during a
/// frontier sweep (policy/bottleneck shares a key with policy/path-sum;
/// latency-body at the current floor plus the unconstrained latency-body
/// tables make three); one spare absorbs an interleaved odd solve.
constexpr std::size_t kMaxWarmTables = 4;

/// True when previously built range tables answer the current problem:
/// same evaluator and configuration rules, budgets tabulated at least as
/// far as this solve needs. A larger `tables->cap` is fine — the DP only
/// reads budgets up to its own cap, and per-budget configurations do not
/// depend on the cap they were tabulated under.
bool TablesUsable(const DpRangeTables& tables, const Evaluator* eval,
                  int cap, int max_len, ReplicationPolicy policy,
                  DpConfigRule rule, double response_cap,
                  bool has_predicate) {
  if (tables.eval != eval || tables.cap < cap || tables.max_len != max_len ||
      tables.rule != rule || tables.has_predicate != has_predicate) {
    return false;
  }
  if (rule == DpConfigRule::kPolicy) return tables.policy == policy;
  return tables.policy == policy && tables.response_cap == response_cap;
}

/// Stage-sweep partition floor: a worker must have at least this much
/// estimated work before fanning a stage out one way further. Stages
/// lighter than a few groups' worth run on fewer workers (often one) —
/// dispatching eight workers at a hundred-row stage is exactly the
/// 8-thread regression the scaling bench used to show.
constexpr std::int64_t kMinWorkPerWorker = 16384;

int RoundUp4(int n) { return (n + 3) & ~3; }

/// Empty cell marker: lo = 0xffff, hi = 0 (hi <= lo). See
/// FlatStage::slot_range.
constexpr std::uint32_t kEmptyCellRange = 0xffffu;

/// (Re)initializes a stage to the unreachable state. Only the per-cell
/// occupancy ranges and row flags are reset — the value/bp tables are
/// never bulk-cleared (a full clear of the O(cap^2 * slots) tables per
/// stage used to dominate the sweep's memory traffic); lanes outside a
/// cell's [lo, hi) range are garbage by contract and never read.
void ClearStage(FlatStage& s, std::size_t cells, int rows) {
  std::uint32_t* r = s.slot_range.data();
  for (std::size_t i = 0; i < cells; ++i) r[i] = kEmptyCellRange;
  for (int row = 0; row < rows; ++row) {
    s.row_live[static_cast<std::size_t>(row)].value.store(
        0, std::memory_order_relaxed);
  }
}

/// First stage index whose captured contents may disagree with `eval`:
/// the earliest dirty task, dirty edge + 1 (edge e is first charged when a
/// module ending at e extends, writing stages >= e + 1), or the end task
/// of a module range whose memory minimum / replicability changed. `k`
/// means nothing is dirty.
int ComputeDirtyFrom(const DpSweepState& s, const Evaluator& eval, int k,
                     int max_len) {
  int dirty = k;
  for (int t = 0; t < k; ++t) {
    if (s.task_hash[static_cast<std::size_t>(t)] != eval.TaskCostHash(t)) {
      dirty = std::min(dirty, t);
      break;  // later tasks cannot lower the minimum
    }
  }
  for (int e = 0; e < k - 1 && e + 1 < dirty; ++e) {
    if (s.edge_hash[static_cast<std::size_t>(e)] != eval.EdgeCostHash(e)) {
      dirty = std::min(dirty, e + 1);
      break;
    }
  }
  const std::vector<int>& mp = eval.min_procs_table();
  const std::vector<char>& rp = eval.replicable_table();
  for (int first = 0; first < k && dirty > 0; ++first) {
    const int last_max = std::min(k - 1, first + max_len - 1);
    for (int last = first; last <= last_max && last < dirty; ++last) {
      const std::size_t idx = static_cast<std::size_t>(first) * k + last;
      if (s.min_procs[idx] != mp[idx] || s.replicable[idx] != rp[idx]) {
        dirty = std::min(dirty, last);
      }
    }
  }
  return dirty;
}

}  // namespace

DpSolution RunChainDp(const DpProblem& problem) {
  PIPEMAP_CHECK(problem.eval != nullptr, "RunChainDp: evaluator required");
  const Evaluator& eval = *problem.eval;
  const int k = eval.num_tasks();
  const int cap = problem.total_procs;
  const MapperOptions& options = problem.options;
  PIPEMAP_CHECK(cap >= 1, "RunChainDp: need at least one processor");
  PIPEMAP_CHECK(cap <= 8191, "RunChainDp: processor count exceeds"
                             " backpointer encoding (8191)");
  PIPEMAP_CHECK(k <= 63, "RunChainDp: chain length exceeds backpointer"
                         " encoding (63)");
  PIPEMAP_CHECK(problem.max_effective_response > 0.0,
                "RunChainDp: response cap must be positive");
  const ReplicationPolicy policy = options.replication;
  const int num_threads = ThreadPool::ResolveThreads(options.num_threads);
  const Deadline* deadline = options.deadline.get();

  const ScopedMetricsEnable observe(options.observe);
  PIPEMAP_TRACE_SPAN("dp.run", "dp", k);
  PIPEMAP_COUNTER_ADD("dp.runs", 1);

  DpContext ctx;
  ctx.eval = &eval;
  ctx.k = k;
  ctx.cap = cap;
  ctx.max_len = options.allow_clustering ? k : 1;
  ctx.path_sum = problem.objective == DpObjective::kPathSum;
  ctx.response_cap = problem.max_effective_response;
  const int max_len = ctx.max_len;
  const bool path_sum = ctx.path_sum;
  const double response_cap = ctx.response_cap;

  // Per-module-range configuration tables: flat (range, budget) arrays,
  // the smallest usable budget per range, and the minimal suffix budgets.
  // A warm start whose tables match this problem skips the whole
  // tabulation; otherwise the tables are built here (ranges are
  // independent, so they tabulate in parallel; each worker writes only
  // its own ranges' rows) and handed to the warm state for the next solve.
  const std::shared_ptr<WarmStartState> warm = options.warm;
  bool reused_tables = false;
  if (warm) {
    for (std::size_t i = 0; i < warm->tables.size(); ++i) {
      if (warm->tables[i] &&
          TablesUsable(*warm->tables[i], &eval, cap, max_len, policy,
                       problem.config_rule, response_cap,
                       static_cast<bool>(options.proc_feasible))) {
        ctx.tables = warm->tables[i];
        // Move to front: most recently used survives pool eviction.
        warm->tables.erase(warm->tables.begin() +
                           static_cast<std::ptrdiff_t>(i));
        warm->tables.insert(warm->tables.begin(), ctx.tables);
        reused_tables = true;
        ++warm->tables_reused;
        PIPEMAP_COUNTER_ADD("dp.warm_tables_reused", 1);
        break;
      }
    }
  }
  if (!reused_tables) {
    ctx.tables = std::make_shared<DpRangeTables>();
    DpRangeTables& tables = *ctx.tables;
    tables.eval = &eval;
    tables.cap = cap;
    tables.max_len = max_len;
    tables.policy = policy;
    tables.rule = problem.config_rule;
    tables.response_cap = response_cap;
    tables.has_predicate = static_cast<bool>(options.proc_feasible);
    tables.budget_stride = cap + 1;
    const std::size_t cfg_size =
        static_cast<std::size_t>(k) * k * (cap + 1);
    tables.cfg_replicas.assign(cfg_size, 0);
    tables.cfg_procs.assign(cfg_size, 0);
    tables.cfg_valid.assign(cfg_size, 0);
    tables.min_budget.assign(static_cast<std::size_t>(k) * k,
                             kInfeasibleProcs);
    std::vector<std::pair<int, int>> ranges;
    for (int first = 0; first < k; ++first) {
      for (int last = first; last < std::min(k, first + max_len); ++last) {
        ranges.emplace_back(first, last);
      }
    }
    {
      PIPEMAP_TRACE_SPAN("dp.cfg_cache", "dp",
                         static_cast<std::int64_t>(ranges.size()));
      PIPEMAP_COUNTER_ADD("dp.cfg_ranges",
                          static_cast<std::uint64_t>(ranges.size()));
      ParallelFor(
          num_threads, static_cast<std::int64_t>(ranges.size()),
          ParallelSchedule::kDynamic, 1,
          [&](int, std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i) {
              const auto [first, last] = ranges[i];
              const std::size_t ri = ctx.RangeIndex(first, last);
              const std::size_t base = ri * (cap + 1);
              for (int b = 1; b <= cap; ++b) {
                const ModuleConfig cfg =
                    problem.config_rule == DpConfigRule::kLatencyBody
                        ? LatencyConfig(eval, first, last, b, response_cap,
                                        options.proc_feasible)
                        : ConfigureConstrained(eval, first, last, b, policy,
                                               options.proc_feasible);
                tables.cfg_replicas[base + b] = cfg.replicas;
                tables.cfg_procs[base + b] = cfg.valid ? cfg.procs : 0;
                tables.cfg_valid[base + b] = cfg.valid ? 1 : 0;
                if (cfg.valid && tables.min_budget[ri] > b) {
                  tables.min_budget[ri] = b;
                }
              }
            }
          });
    }

    // Minimal total budget needed to map tasks t..k-1 (for pruning and to
    // detect infeasibility early).
    tables.suffix_min.assign(k + 1, 0);
    for (int t = k - 1; t >= 0; --t) {
      long long best = std::numeric_limits<long long>::max() / 4;
      for (int last = t; last < std::min(k, t + max_len); ++last) {
        const int mb = tables.min_budget[ctx.RangeIndex(t, last)];
        if (mb >= kInfeasibleProcs) continue;
        best = std::min(
            best, static_cast<long long>(mb) + tables.suffix_min[last + 1]);
      }
      tables.suffix_min[t] = best;
    }
    if (warm) {
      warm->tables.insert(warm->tables.begin(), ctx.tables);
      if (warm->tables.size() > kMaxWarmTables) {
        warm->tables.resize(kMaxWarmTables);
      }
      ++warm->tables_built;
    }
  }
  const std::vector<long long>& suffix_min = ctx.tables->suffix_min;
  if (suffix_min[0] > cap) {
    throw Infeasible(
        "RunChainDp: not enough processors to satisfy module memory minima");
  }
  const char* cfg_valid = ctx.tables->cfg_valid.data();
  const int* cfg_procs = ctx.tables->cfg_procs.data();
  const int* cfg_replicas = ctx.tables->cfg_replicas.data();

  // ---------------------------------------------------------------------
  // Slot universe: the distinct per-instance processor counts any valid
  // configuration can hand to its successor, plus 0 for "no predecessor".
  // The previous-procs axis of the DP state is indexed by slot rank
  // instead of raw count — the axis shrinks from cap+1 to the number of
  // counts that actually occur, which is what makes the per-cell slot
  // rows short enough to scan with one or two vector loads. Ranks are
  // ascending in the processor count, so every tie-break over slots
  // matches the serial tie-break over raw counts.
  // ---------------------------------------------------------------------
  std::vector<int> slot_of(static_cast<std::size_t>(cap) + 1, -1);
  std::vector<int> slot_procs;
  {
    std::vector<char> present(static_cast<std::size_t>(cap) + 1, 0);
    present[0] = 1;
    for (int first = 0; first < k; ++first) {
      for (int last = first; last < std::min(k, first + max_len); ++last) {
        const std::size_t base = ctx.CfgBase(first, last);
        for (int b = 1; b <= cap; ++b) {
          if (cfg_valid[base + b]) present[cfg_procs[base + b]] = 1;
        }
      }
    }
    for (int p = 0; p <= cap; ++p) {
      if (present[p]) {
        slot_of[p] = static_cast<int>(slot_procs.size());
        slot_procs.push_back(p);
      }
    }
  }
  const int nslots = static_cast<int>(slot_procs.size());
  const int nslots4 = RoundUp4(nslots);
  // Pad the slot pitch to 16 doubles: value rows start on cache lines
  // (16 * 8 = two lines) and bp rows (4-byte entries) on their own line,
  // so workers writing neighbouring (pu, b) cells never share one.
  const int slot_pitch = (nslots + 15) & ~15;

  // Upper bound on the optimum from cheap heuristic mappings, tightened
  // by the warm start's incumbent when one fits the current constraints.
  // Dominance pruning skips cells whose optimistic bound strictly exceeds
  // the threshold, so a state that ties or beats the incumbent is never
  // lost and the returned mapping is identical with pruning off — and
  // therefore identical warm or cold.
  Incumbent incumbent = IncumbentBound(ctx);
  bool seeded_incumbent = false;
  if (warm && warm->incumbent) {
    Incumbent seeded = IncumbentFromMapping(ctx, *warm->incumbent);
    if (seeded.value < incumbent.value) {
      incumbent = std::move(seeded);
      seeded_incumbent = true;
      ++warm->incumbents_seeded;
      PIPEMAP_COUNTER_ADD("dp.warm_incumbents_seeded", 1);
    }
  }

  // ---------------------------------------------------------------------
  // Incremental re-solve: check a captured sweep out of the warm state
  // (exclusively — it is re-attached only on success), find the first
  // stage whose inputs changed, and keep every earlier stage's tables.
  // Reuse additionally requires the gate inputs to agree: identical slot
  // universe and identical suffix-budget bounds over the clean prefix
  // (both gate which cells exist). When anything disqualifies the capture
  // the solve silently runs the full sweep — incremental is an
  // accelerator, never a semantic switch.
  //
  // Capture runs with dominance pruning disabled on non-terminal stages
  // so the kept tables are complete. That is exactness-preserving in both
  // directions: a write emitted from a cell the pruned sweep would have
  // skipped carries a value >= its cell bound > threshold >= optimum, and
  // values never decrease along a chain (max-aggregation, or adding
  // non-negative costs), so no such write can reach, beat, or tie the
  // optimum's terminal state — the mapping and objective are bitwise what
  // the pruned cold solve returns.
  // ---------------------------------------------------------------------
  const bool want_capture = options.incremental && warm && eval.tabulated();
  std::shared_ptr<DpSweepState> sweep;
  bool used_sweep_prefix = false;
  // First stage (end-task index) that must be re-swept; k-1 at minimum is
  // always re-swept so the terminal candidates are re-selected.
  int rebuild_from = 0;
  if (want_capture && warm->sweep) {
    std::shared_ptr<DpSweepState> prior = std::move(warm->sweep);
    warm->sweep.reset();
    const DpSweepState& s = *prior;
    const bool key_ok =
        s.k == k && s.cap == cap && s.max_len == max_len &&
        s.policy == policy && s.rule == problem.config_rule &&
        s.response_cap == response_cap &&
        s.has_predicate == static_cast<bool>(options.proc_feasible) &&
        s.path_sum == path_sum && s.slot_procs == slot_procs &&
        s.slot_pitch == slot_pitch;
    if (key_ok) {
      int dirty = ComputeDirtyFrom(s, eval, k, max_len);
      bool gates_ok = true;
      for (int t = 0; t <= std::min(dirty, k); ++t) {
        if (s.suffix_min[static_cast<std::size_t>(t)] != suffix_min[t]) {
          gates_ok = false;
          break;
        }
      }
      if (gates_ok && dirty > 0) {
        sweep = std::move(prior);
        used_sweep_prefix = true;  // dirty == k reuses every stage but last
        rebuild_from = std::min(dirty, k - 1);
        ++warm->prefix_reused;
        PIPEMAP_COUNTER_ADD("dp.sweep_prefix_reused", 1);
      }
    }
  }
  const bool fresh_grid = sweep == nullptr;
  if (fresh_grid) {
    sweep = std::make_shared<DpSweepState>();
    sweep->stages.resize(static_cast<std::size_t>(k) * k);
    rebuild_from = 0;
  }
  DpSweepState& grid = *sweep;
  auto stage_at = [&grid, k](int j, int len) -> FlatStage& {
    return grid.stages[static_cast<std::size_t>(j) * k + (len - 1)];
  };

  const std::size_t stage_cells =
      static_cast<std::size_t>(cap + 1) * (cap + 1);
  const std::size_t stage_extent = stage_cells * slot_pitch;
  const std::size_t bytes_per_stage =
      stage_extent * (sizeof(double) + sizeof(std::uint32_t)) +
      stage_cells * sizeof(std::uint32_t) +
      static_cast<std::size_t>(cap + 1) * kCacheLineBytes;
  auto ensure_stage = [&](int j, int len) -> FlatStage& {
    FlatStage& s = stage_at(j, len);
    if (!s.allocated) {
      grid.allocated_bytes += bytes_per_stage;
      if (grid.allocated_bytes > options.max_table_bytes) {
        throw ResourceLimit(
            "RunChainDp: DP table exceeds max_table_bytes; reduce P or use "
            "GreedyMapper");
      }
      s.value.Reset(stage_extent);
      s.bp.Reset(stage_extent);
      s.slot_range.Reset(stage_cells);
      s.row_live =
          std::vector<CacheLinePadded<std::atomic<char>>>(cap + 1);
      ClearStage(s, stage_cells, cap + 1);
      s.allocated = true;
    }
    return s;
  };
  // Stages at or past the rebuild point are re-derived from scratch.
  if (!fresh_grid) {
    for (int j = rebuild_from; j < k; ++j) {
      for (int len = 1; len <= std::min(max_len, j + 1); ++len) {
        FlatStage& s = stage_at(j, len);
        if (s.allocated) ClearStage(s, stage_cells, cap + 1);
      }
    }
  }
  auto cell_index = [cap](int pu, int b) {
    return static_cast<std::size_t>(pu) * (cap + 1) + b;
  };

  // Single write point for a stage cell (pu, b, dslot): maintains the
  // cell's initialized-lane range (gap lanes fill with +inf on extension),
  // applies the strict-< minimum rule against initialized lanes, and
  // stores value + backpointer together. Every (cell, slot) is owned by
  // exactly one worker within a sweep (the source row of a write to
  // (pu + b2, b2) is recoverable as pu), so no synchronization is needed.
  // Returns whether the cell was updated.
  auto cell_write = [slot_pitch](FlatStage& s, std::size_t cell, int dslot,
                                 double nv, std::uint32_t bpv) -> bool {
    const std::size_t base = cell * static_cast<std::size_t>(slot_pitch);
    double* lanes = s.value.data() + base;
    std::uint32_t& range = s.slot_range[cell];
    const int lo = static_cast<int>(range & 0xffffu);
    const int hi = static_cast<int>(range >> 16);
    if (hi <= lo) {
      range = static_cast<std::uint32_t>(dslot) |
              (static_cast<std::uint32_t>(dslot + 1) << 16);
    } else if (dslot < lo) {
      for (int g = dslot + 1; g < lo; ++g) lanes[g] = kInf;
      range = static_cast<std::uint32_t>(dslot) |
              (static_cast<std::uint32_t>(hi) << 16);
    } else if (dslot >= hi) {
      for (int g = hi; g < dslot; ++g) lanes[g] = kInf;
      range = static_cast<std::uint32_t>(lo) |
              (static_cast<std::uint32_t>(dslot + 1) << 16);
    } else if (!(nv < lanes[dslot])) {
      return false;
    }
    lanes[dslot] = nv;
    s.bp[base + dslot] = bpv;
    return true;
  };

  // Seed: first module [0 .. len-1] with budget b. Under prefix reuse,
  // seeds landing in clean stages are already in the captured tables.
  for (int len = 1; len <= std::min(max_len, k); ++len) {
    const int last = len - 1;
    if (!fresh_grid && last < rebuild_from) continue;
    const std::size_t cbase = ctx.CfgBase(0, last);
    const long long suffix_needed = suffix_min[last + 1];
    for (int b = 1; b <= cap; ++b) {
      if (!cfg_valid[cbase + b]) continue;
      if (b + suffix_needed > cap) break;
      FlatStage& s = ensure_stage(last, len);
      if (cell_write(s, cell_index(b, b), 0, 0.0, PackBp(0, 0, 0))) {
        s.row_live[b].value.store(1, std::memory_order_relaxed);
      }
    }
  }

  BestTerminal best;
  std::uint64_t work = 0;
  std::uint64_t pruned_cells = 0;

  // Per-worker reduction slots for the parallel row sweeps, each on its
  // own cache line so concurrent accumulation never bounces a line.
  struct WorkerAcc {
    BestTerminal best;
    std::uint64_t work = 0;
    std::uint64_t pruned = 0;
  };
  std::vector<CacheLinePadded<WorkerAcc>> workers(
      static_cast<std::size_t>(num_threads));
  std::vector<std::uint64_t> worker_work_total(
      static_cast<std::size_t>(num_threads), 0);

  // Per-worker scratch for the vectorized transition kernel: the compacted
  // source arrays of the current cell and the per-target running minima.
  // Rounded up so the kernels can always read/write whole vectors.
  struct WorkerScratch {
    std::vector<double> src_v, src_c, src_d;
    std::vector<int> src_slot;
    std::vector<double> best, src_idx;
  };
  std::vector<WorkerScratch> scratch(static_cast<std::size_t>(num_threads));
  for (WorkerScratch& ws : scratch) {
    ws.src_v.resize(static_cast<std::size_t>(nslots4));
    ws.src_c.resize(static_cast<std::size_t>(nslots4));
    ws.src_d.resize(static_cast<std::size_t>(nslots4));
    ws.src_slot.resize(static_cast<std::size_t>(nslots));
    const std::size_t cap4 = static_cast<std::size_t>(RoundUp4(cap + 1));
    ws.best.assign(cap4, kInf);
    ws.src_idx.assign(cap4, -1.0);
  }

  // Whether dominance pruning may skip cells. Capture keeps the tables
  // complete, so pruning stays off on stages with outgoing writes; the
  // terminal stage writes nothing, so it always prunes.
  const bool capture_tables = want_capture;

  // Cooperative deadline: any worker observing expiry raises the shared
  // flag; the other workers bail at their next row boundary and the stage
  // loop stops. The partially swept stage's candidates are discarded (a
  // partial sweep is not reproducible), so `best` only ever reflects fully
  // completed stages and its backpointer chain is intact.
  std::atomic<bool> deadline_hit{false};
  bool aborted = false;

  // Process stages in increasing end-task order so transitions always move
  // forward. Under prefix reuse, stages before the rebuild point are
  // re-swept only as sources for rebuilt destinations (a module spans at
  // most max_len tasks, so stages earlier than rebuild_from - max_len
  // cannot write into the rebuilt suffix at all).
  const int sweep_from =
      fresh_grid ? 0 : std::max(0, rebuild_from - max_len);
  for (int j = sweep_from; j < k && !aborted; ++j) {
    // Clean source stages only emit into rebuilt destinations; their own
    // tables and terminal candidates are already accounted for.
    const bool source_only = !fresh_grid && j < rebuild_from;
    for (int len = 1; len <= std::min(max_len, j + 1); ++len) {
      if (deadline != nullptr && deadline->ExpiredNow()) {
        aborted = true;
        break;
      }
      FlatStage& s = stage_at(j, len);
      if (!s.allocated) continue;
      const int first = j - len + 1;
      const std::size_t cbase = ctx.CfgBase(first, j);
      const bool is_last_stage = (j == k - 1);

      // Row-level suffix prune: a state using pu processors still needs
      // suffix_min[j+1] more, whatever module comes next. Collect the rows
      // that can both complete and hold at least one reachable state.
      const long long row_suffix = is_last_stage ? 0 : suffix_min[j + 1];
      std::vector<int> live_rows;
      for (int pu = 1; pu <= cap; ++pu) {
        if (pu + row_suffix > cap) break;
        if (s.row_live[pu].value.load(std::memory_order_relaxed)) {
          live_rows.push_back(pu);
        }
      }
      if (live_rows.empty()) continue;

      PIPEMAP_TRACE_SPAN("dp.stage", "dp", j);
      PIPEMAP_COUNTER_ADD("dp.stages_swept", 1);
      PIPEMAP_HISTOGRAM_RECORD("dp.stage_live_rows",
                               static_cast<double>(live_rows.size()));

      // Everything in a cell's transition that depends only on the current
      // module's configuration — its body time, its incoming transfer from
      // each possible predecessor, its outgoing transfer to each target
      // budget — is loop-invariant across the O(cap^2) cells sharing that
      // configuration. Cache it per distinct configuration ("rank") up
      // front, so the per-cell loop does table lookups only. Ranks cover
      // every valid budget b <= the largest live row (the per-row loops
      // scan b <= pu).
      const int max_live_pu = live_rows.back();
      std::vector<int> rank_of_slot(static_cast<std::size_t>(nslots), -1);
      std::vector<int> rank_slots;
      for (int b = 1; b <= max_live_pu; ++b) {
        if (!cfg_valid[cbase + b]) continue;
        const int sl = slot_of[static_cast<std::size_t>(cfg_procs[cbase + b])];
        if (rank_of_slot[static_cast<std::size_t>(sl)] < 0) {
          rank_of_slot[static_cast<std::size_t>(sl)] =
              static_cast<int>(rank_slots.size());
          rank_slots.push_back(sl);
        }
      }
      const int nranks = static_cast<int>(rank_slots.size());
      // body per rank, and (incoming transfer + body) per (rank, source
      // slot) — the exact expression the serial sweep computes per cell
      // (slot 0 is the no-predecessor marker: in_com = 0.0; entries for
      // slot > 0 at first == 0 are never read, first-module stages only
      // hold seeds).
      std::vector<double> body_of_rank(static_cast<std::size_t>(nranks));
      std::vector<double> in_body(static_cast<std::size_t>(nranks) * nslots);
      for (int r = 0; r < nranks; ++r) {
        const int procs = slot_procs[static_cast<std::size_t>(rank_slots[r])];
        const double body = eval.Body(first, j, procs);
        body_of_rank[r] = body;
        double* row = in_body.data() + static_cast<std::size_t>(r) * nslots;
        row[0] = 0.0 + body;
        for (int slot = 1; slot < nslots; ++slot) {
          row[slot] =
              first > 0
                  ? eval.ECom(first - 1, slot_procs[slot], procs) + body
                  : body;
        }
      }

      // Pre-allocate every stage this sweep can write, so the parallel
      // rows never mutate the grid, and flatten each target's valid
      // budgets into ascending arrays the kernel can scan, together with
      // the outgoing-transfer costs per rank (gathered once per stage
      // instead of once per cell). Reachability matches the per-row budget
      // test at the smallest live row (the easiest to extend).
      struct Target {
        FlatStage* stage = nullptr;
        long long tail_needed = 0;
        int next_min = kInfeasibleProcs;
        std::vector<int> b2s;  // ascending valid budgets
        int o_pitch = 0;       // b2s.size() rounded up to 4
        std::vector<double> o;  // [rank][idx]: ECom(j, procs(rank), procs2)
      };
      std::vector<Target> targets;
      if (!is_last_stage) {
        const int min_live_pu = live_rows.front();
        for (int len2 = 1; len2 <= std::min(max_len, k - 1 - j); ++len2) {
          const int next_last = j + len2;
          Target t;
          t.next_min = ctx.MinBudget(j + 1, next_last);
          t.tail_needed = suffix_min[next_last + 1];
          const bool reachable =
              t.next_min < kInfeasibleProcs &&
              min_live_pu + t.next_min + t.tail_needed <= cap;
          // Under prefix reuse, writes into clean stages are already in
          // the captured tables (and would be no-ops: the min-update is
          // idempotent); skip them.
          const bool wanted =
              fresh_grid || next_last >= rebuild_from;
          if (reachable && wanted) {
            t.stage = &ensure_stage(next_last, len2);
            const std::size_t nbase = ctx.CfgBase(j + 1, next_last);
            std::vector<int> procs2;
            for (int b2 = 1; b2 <= cap; ++b2) {
              if (!cfg_valid[nbase + b2]) continue;
              t.b2s.push_back(b2);
              procs2.push_back(cfg_procs[nbase + b2]);
            }
            const int count = static_cast<int>(t.b2s.size());
            t.o_pitch = RoundUp4(count);
            t.o.assign(static_cast<std::size_t>(nranks) * t.o_pitch, kInf);
            for (int r = 0; r < nranks; ++r) {
              const int procs = slot_procs[rank_slots[r]];
              const double* erow =
                  eval.tabulated() ? eval.EComRow(j, procs) : nullptr;
              double* dst = t.o.data() + static_cast<std::size_t>(r) * t.o_pitch;
              for (int idx = 0; idx < count; ++idx) {
                dst[idx] = erow != nullptr ? erow[procs2[idx]]
                                           : eval.ECom(j, procs, procs2[idx]);
              }
            }
          }
          targets.push_back(std::move(t));
        }
      }
      if (source_only) {
        bool any_target = false;
        for (const Target& t : targets) any_target |= t.stage != nullptr;
        if (!any_target) continue;
      }

      // The dominance threshold stays frozen for the whole stage: `best`
      // only advances on terminal stages, which have no outgoing
      // transitions, so every thread count sees the same table contents.
      // Terminal rows additionally prune against their worker-local best.
      const double frozen_threshold = std::min(incumbent.value, best.total);

      for (int w = 0; w < num_threads; ++w) {
        workers[static_cast<std::size_t>(w)].value.best = BestTerminal{};
      }

      auto sweep_rows = [&](int worker, std::int64_t row_begin,
                            std::int64_t row_end) {
        WorkerAcc& acc = workers[static_cast<std::size_t>(worker)].value;
        WorkerScratch& ws = scratch[static_cast<std::size_t>(worker)];
        BestTerminal local_best = acc.best;
        std::uint64_t local_work = 0;
        std::uint64_t local_pruned = 0;
        for (std::int64_t row = row_begin; row < row_end; ++row) {
          if (deadline != nullptr &&
              (deadline_hit.load(std::memory_order_relaxed) ||
               deadline->expired())) {
            deadline_hit.store(true, std::memory_order_relaxed);
            break;
          }
          const int pu = live_rows[static_cast<std::size_t>(row)];
          for (int b = 1; b <= pu; ++b) {
            if (!cfg_valid[cbase + b]) continue;
            const std::size_t cell = cell_index(pu, b);
            const std::uint32_t crange = s.slot_range[cell];
            const int lo = static_cast<int>(crange & 0xffffu);
            const int hi = static_cast<int>(crange >> 16);
            if (hi <= lo) continue;  // cell never written
            const int procs = cfg_procs[cbase + b];
            const int replicas = cfg_replicas[cbase + b];
            const int rank = rank_of_slot[static_cast<std::size_t>(
                slot_of[static_cast<std::size_t>(procs)])];
            const double* vrow =
                s.value.data() + cell * static_cast<std::size_t>(slot_pitch);

            // Dominance prune: the best completion through (pu, b, *) is
            // at least the cheapest incoming value combined with this
            // module's body at zero boundary communication. Strictly worse
            // than the threshold means no completion can beat or tie the
            // optimum. With capture on, the prune is disabled (the tables
            // must stay complete); the extra writes can never displace the
            // optimum — see the capture comment above. The min over the
            // initialized lanes equals the min over the whole conceptual
            // row: uninitialized lanes are +inf by definition.
            const double v_min = simd::RowMin(vrow + lo, hi - lo);
            const double body = body_of_rank[static_cast<std::size_t>(rank)];
            const double cell_bound =
                path_sum ? v_min + body
                         : std::max(v_min, body / replicas);
            if ((!capture_tables || is_last_stage) &&
                cell_bound > std::min(frozen_threshold, local_best.total)) {
              ++local_pruned;
              continue;
            }

            // Compact the finite sources of this cell: value, in + body,
            // value + body, and the slot id, in ascending slot order (the
            // serial sweep's previous-procs order, so first-wins ties
            // resolve identically).
            const double* in_body_row =
                in_body.data() + static_cast<std::size_t>(rank) * nslots;
            int n = 0;
            for (int slot = lo; slot < hi; ++slot) {
              const double v = vrow[slot];
              if (v == kInf) continue;
              ws.src_v[n] = v;
              ws.src_c[n] = in_body_row[slot];
              ws.src_d[n] = v + body;
              ws.src_slot[n] = slot;
              ++n;
            }
            const double replicas_d = static_cast<double>(replicas);

            if (is_last_stage) {
              for (int i = 0; i < n; ++i) {
                ++local_work;
                const double resp = ws.src_c[i] / replicas_d;
                if (resp > response_cap) continue;
                // Path-sum counts the body only: the incoming transfer
                // was charged when the previous module completed.
                const double total =
                    path_sum ? ws.src_d[i] : std::max(ws.src_v[i], resp);
                if (total < local_best.total) {
                  local_best =
                      BestTerminal{total, j, len, pu, b, ws.src_slot[i]};
                }
              }
              continue;
            }
            if (source_only && n == 0) continue;

            // Extend with the next module [j+1 .. j+len2] and budget b2.
            // The kernel runs per source over the contiguous valid-b2
            // axis, maintaining per-target minima; the merge below then
            // performs one strict-< update per destination cell. Rows of
            // the destination stage are owned exclusively: the source row
            // of a write to (pu + b2, b2, *) is recoverable as
            // pu = (pu + b2) - b2, so no two source rows ever touch the
            // same destination cell.
            const int dslot = slot_of[static_cast<std::size_t>(procs)];
            for (const Target& t : targets) {
              if (t.stage == nullptr ||
                  pu + t.next_min + t.tail_needed > cap) {
                continue;
              }
              // Valid budgets are ascending; the row's budget headroom
              // cuts them to a prefix.
              const long long limit_ll = cap - pu - t.tail_needed;
              if (limit_ll < 1) continue;
              const int limit = static_cast<int>(
                  std::min<long long>(limit_ll, cap));
              const int m = static_cast<int>(
                  std::upper_bound(t.b2s.begin(), t.b2s.end(), limit) -
                  t.b2s.begin());
              if (m == 0) continue;
              local_work += static_cast<std::uint64_t>(n) * m;

              const double* o =
                  t.o.data() + static_cast<std::size_t>(rank) * t.o_pitch;
              const int m4 = RoundUp4(m);
              for (int idx = 0; idx < m4; ++idx) {
                ws.best[idx] = kInf;
                ws.src_idx[idx] = -1.0;
              }
              for (int i = 0; i < n; ++i) {
                simd::UpdateBestOverTargets(
                    ws.src_v[i], ws.src_c[i], ws.src_d[i],
                    static_cast<double>(i), o, m, replicas_d,
                    response_cap, path_sum, ws.best.data(),
                    ws.src_idx.data());
              }
              FlatStage& ns = *t.stage;
              for (int idx = 0; idx < m; ++idx) {
                const double nv = ws.best[idx];
                if (nv == kInf) continue;
                const int b2 = t.b2s[idx];
                const int i = static_cast<int>(ws.src_idx[idx]);
                if (cell_write(ns, cell_index(pu + b2, b2), dslot, nv,
                               PackBp(len, b, ws.src_slot[i]))) {
                  ns.row_live[pu + b2].value.store(
                      1, std::memory_order_relaxed);
                }
              }
            }
          }
        }
        acc.best = local_best;
        acc.work += local_work;
        acc.pruned += local_pruned;
      };

      // Weighted contiguous partitioning: heavier rows (more budget cells,
      // more transition headroom) get fewer neighbours, and the group
      // count shrinks when the stage is too light to feed every worker —
      // fine-grained fan-out of tiny stages is where the old sweep lost
      // its 8-thread scaling. Each group maps to one worker, so per-worker
      // reductions stay reproducible for a given thread count; the merge
      // below is order-independent, so the mapping is identical for every
      // thread count regardless of the partition.
      std::vector<std::int64_t> weights(live_rows.size());
      {
        // valid-budget prefix counts for the current range.
        std::vector<std::int64_t> valid_prefix(
            static_cast<std::size_t>(cap) + 1, 0);
        for (int b = 1; b <= cap; ++b) {
          valid_prefix[b] = valid_prefix[b - 1] + (cfg_valid[cbase + b] ? 1 : 0);
        }
        for (std::size_t r = 0; r < live_rows.size(); ++r) {
          const int pu = live_rows[r];
          const std::int64_t cells = valid_prefix[pu];
          const std::int64_t span =
              is_last_stage ? 1
                            : std::max<std::int64_t>(1, cap - pu + 1);
          weights[r] = 1 + cells * span;
        }
      }
      const std::vector<std::int64_t> bounds =
          BalancedPartition(weights, num_threads, kMinWorkPerWorker);
      const int groups = static_cast<int>(bounds.size()) - 1;
      ParallelFor(groups, groups, ParallelSchedule::kStatic, 1,
                  [&](int worker, std::int64_t begin, std::int64_t end) {
                    for (std::int64_t g = begin; g < end; ++g) {
                      sweep_rows(worker, bounds[static_cast<std::size_t>(g)],
                                 bounds[static_cast<std::size_t>(g) + 1]);
                    }
                  });

      if (deadline_hit.load(std::memory_order_relaxed)) {
        aborted = true;
        break;
      }

      for (int w = 0; w < num_threads; ++w) {
        const BestTerminal& cand =
            workers[static_cast<std::size_t>(w)].value.best;
        if (cand.total == kInf) continue;
        // Candidates from this stage beat the incumbent only strictly, and
        // among themselves the smallest (pu, b, slot) wins ties — exactly
        // the state the serial sweep reaches first.
        if (cand.total < best.total ||
            (cand.total == best.total && best.j == j && best.len == len &&
             best.WorseThan(cand))) {
          best = cand;
        }
      }
    }
  }
  for (int w = 0; w < num_threads; ++w) {
    const WorkerAcc& acc = workers[static_cast<std::size_t>(w)].value;
    work += acc.work;
    pruned_cells += acc.pruned;
    worker_work_total[static_cast<std::size_t>(w)] = acc.work;
  }
  PIPEMAP_COUNTER_ADD("dp.cells_evaluated", work);
  PIPEMAP_COUNTER_ADD("dp.cells_pruned", pruned_cells);
  PIPEMAP_GAUGE_MAX("dp.table_bytes",
                    static_cast<double>(grid.allocated_bytes));

  const bool timed_out = aborted;
  if (timed_out) PIPEMAP_COUNTER_ADD("dp.deadline_expirations", 1);
  if (!timed_out && best.j < 0) {
    throw Infeasible("RunChainDp: no valid mapping found");
  }
  // On timeout, return whichever is better: the best terminal of the
  // completed stages or the heuristic/warm incumbent. The incumbent value
  // was the pruning threshold, so a surviving terminal never exceeds it.
  const bool use_terminal =
      best.j >= 0 && !(timed_out && incumbent.value < best.total);
  if (!use_terminal && incumbent.value == kInf) {
    throw ResourceLimit(
        "RunChainDp: deadline expired before any feasible incumbent was "
        "found");
  }

  DpSolution solution;
  if (use_terminal) {
    // Reconstruct module list by walking backpointers from the best
    // terminal state.
    std::vector<ModuleAssignment> reversed;
    int j = best.j, len = best.len, pu = best.pu, b = best.b;
    int slot = best.slot;
    while (true) {
      const int first = j - len + 1;
      const ModuleConfig cfg = ctx.Cfg(first, j, b);
      reversed.push_back(ModuleAssignment{first, j, cfg.replicas, cfg.procs});
      const FlatStage& s = stage_at(j, len);
      const std::uint32_t bp =
          s.bp[cell_index(pu, b) * static_cast<std::size_t>(slot_pitch) +
               slot];
      const int l_prev = BpLen(bp);
      if (l_prev == 0) break;
      const int b_prev = BpBudget(bp);
      const int slot_prev = BpPrevSlot(bp);
      j = first - 1;
      pu -= b;
      len = l_prev;
      b = b_prev;
      slot = slot_prev;
    }
    std::reverse(reversed.begin(), reversed.end());
    solution.mapping.modules = std::move(reversed);
    solution.objective_value = best.total;
  } else {
    solution.mapping = std::move(incumbent.mapping);
    solution.objective_value = incumbent.value;
  }
  solution.work = work;
  solution.pruned_cells = pruned_cells;
  solution.reused_tables = reused_tables;
  solution.seeded_incumbent = seeded_incumbent;
  solution.timed_out = timed_out;
  solution.used_sweep_prefix = used_sweep_prefix;
  solution.resweep_from = used_sweep_prefix ? rebuild_from : -1;
  solution.worker_work = std::move(worker_work_total);
  if (warm) warm->incumbent = solution.mapping;

  // Re-attach the sweep for the next incremental solve. Timed-out grids
  // are dropped: a partially swept stage is not a function of the problem
  // alone, so it must never seed a future prefix.
  if (want_capture && !timed_out) {
    DpSweepState& st = grid;
    st.k = k;
    st.cap = cap;
    st.max_len = max_len;
    st.policy = policy;
    st.rule = problem.config_rule;
    st.response_cap = response_cap;
    st.has_predicate = static_cast<bool>(options.proc_feasible);
    st.path_sum = path_sum;
    st.task_hash.resize(static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) st.task_hash[t] = eval.TaskCostHash(t);
    st.edge_hash.resize(static_cast<std::size_t>(std::max(0, k - 1)));
    for (int e = 0; e < k - 1; ++e) st.edge_hash[e] = eval.EdgeCostHash(e);
    st.min_procs = eval.min_procs_table();
    st.replicable = eval.replicable_table();
    st.suffix_min = suffix_min;
    st.slot_procs = slot_procs;
    st.slot_pitch = slot_pitch;
    warm->sweep = std::move(sweep);
    ++warm->sweeps_captured;
    PIPEMAP_COUNTER_ADD("dp.sweeps_captured", 1);
  }
  return solution;
}

}  // namespace pipemap::detail
