#include "core/brute_force.h"

#include <limits>
#include <optional>

#include "support/error.h"

namespace pipemap {
namespace {

/// Enumerates every clustering of a k-task chain (all boundary subsets)
/// and invokes `visit(clustering)`.
template <typename Visit>
void ForEachClustering(int k, bool allow_clustering, Visit&& visit) {
  const std::uint64_t num_clusterings =
      allow_clustering ? (std::uint64_t{1} << (k - 1)) : 1;
  for (std::uint64_t mask = 0; mask < num_clusterings; ++mask) {
    Clustering clustering;
    int first = 0;
    for (int e = 0; e < k - 1; ++e) {
      const bool split = allow_clustering ? ((mask >> e) & 1) != 0 : true;
      if (split) {
        clustering.emplace_back(first, e);
        first = e + 1;
      }
    }
    clustering.emplace_back(first, k - 1);
    visit(clustering);
  }
}

}  // namespace

BruteForceMapper::BruteForceMapper(BruteForceOptions options)
    : options_(std::move(options)) {}

MapResult BruteForceMapper::Map(const Evaluator& eval, int total_procs) const {
  const int k = eval.num_tasks();
  const ReplicationPolicy policy = options_.base.replication;
  const ProcPredicate& feasible = options_.base.proc_feasible;

  std::uint64_t work = 0;
  std::optional<Mapping> best;
  double best_throughput = 0.0;

  ForEachClustering(k, options_.base.allow_clustering,
                    [&](const Clustering& clustering) {
    const int l = static_cast<int>(clustering.size());
    // Enumerate budget vectors recursively.
    std::vector<int> budgets(l, 0);
    auto recurse = [&](auto&& self, int idx, int used) -> void {
      if (idx == l) {
        ++work;
        if (work > options_.max_evaluations) {
          throw ResourceLimit("BruteForceMapper: evaluation cap exceeded");
        }
        const auto mapping =
            BuildMapping(eval, clustering, budgets, policy, feasible);
        if (!mapping) return;
        const double t = eval.Throughput(*mapping);
        if (t > best_throughput) {
          best_throughput = t;
          best = *mapping;
        }
        return;
      }
      for (int b = 1; used + b <= total_procs; ++b) {
        budgets[idx] = b;
        self(self, idx + 1, used + b);
      }
    };
    recurse(recurse, 0, 0);
  });

  if (!best) {
    throw Infeasible("BruteForceMapper: no valid mapping exists");
  }
  MapResult result;
  result.mapping = *best;
  result.throughput = best_throughput;
  result.work = work;
  return result;
}

LatencyBruteResult BruteForceMinLatency(const Evaluator& eval,
                                        int total_procs,
                                        double min_throughput,
                                        const BruteForceOptions& options) {
  const int k = eval.num_tasks();
  const ProcPredicate& feasible = options.base.proc_feasible;

  std::uint64_t work = 0;
  std::optional<Mapping> best;
  double best_latency = std::numeric_limits<double>::infinity();

  ForEachClustering(k, options.base.allow_clustering,
                    [&](const Clustering& clustering) {
    const int l = static_cast<int>(clustering.size());
    Mapping mapping;
    mapping.modules.resize(l);
    // Enumerate per-module (instance size, replica count) pairs.
    auto recurse = [&](auto&& self, int idx, int used) -> void {
      if (idx == l) {
        ++work;
        if (work > options.max_evaluations) {
          throw ResourceLimit("BruteForceMinLatency: evaluation cap"
                              " exceeded");
        }
        if (min_throughput > 0.0 &&
            eval.Throughput(mapping) < min_throughput) {
          return;
        }
        const double latency = eval.Latency(mapping);
        if (latency < best_latency) {
          best_latency = latency;
          best = mapping;
        }
        return;
      }
      const auto [first, last] = clustering[idx];
      const int min_p = eval.MinProcs(first, last);
      if (min_p >= kInfeasibleProcs) return;
      const int max_r = (options.base.replication != ReplicationPolicy::kNone
                             ? eval.Replicable(first, last)
                             : false)
                            ? (total_procs - used) / min_p
                            : 1;
      for (int r = 1; r <= std::max(1, max_r); ++r) {
        for (int p = min_p; used + r * p <= total_procs; ++p) {
          if (feasible && !feasible(p)) continue;
          mapping.modules[idx] = ModuleAssignment{first, last, r, p};
          self(self, idx + 1, used + r * p);
        }
        if (used + (r + 1) * min_p > total_procs) break;
      }
    };
    recurse(recurse, 0, 0);
  });

  if (!best) {
    throw Infeasible("BruteForceMinLatency: no valid mapping exists");
  }
  LatencyBruteResult result;
  result.latency = best_latency;
  result.throughput = eval.Throughput(*best);
  result.mapping = std::move(*best);
  result.work = work;
  return result;
}

}  // namespace pipemap
