#include "core/brute_force.h"

#include <atomic>
#include <limits>
#include <optional>
#include <vector>

#include "support/error.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/tracer.h"

namespace pipemap {
namespace {

/// Enumerates every clustering of a k-task chain (all boundary subsets)
/// and invokes `visit(clustering)`. `mask_begin`/`mask_end` bound the
/// boundary subsets visited so the enumeration can be split across
/// workers; each mask is owned by exactly one worker.
template <typename Visit>
void ForEachClustering(int k, bool allow_clustering, std::uint64_t mask_begin,
                       std::uint64_t mask_end, Visit&& visit) {
  for (std::uint64_t mask = mask_begin; mask < mask_end; ++mask) {
    Clustering clustering;
    int first = 0;
    for (int e = 0; e < k - 1; ++e) {
      const bool split = allow_clustering ? ((mask >> e) & 1) != 0 : true;
      if (split) {
        clustering.emplace_back(first, e);
        first = e + 1;
      }
    }
    clustering.emplace_back(first, k - 1);
    visit(mask, clustering);
  }
}

std::uint64_t NumClusterings(int k, bool allow_clustering) {
  return allow_clustering ? (std::uint64_t{1} << (k - 1)) : 1;
}

/// Per-worker best candidate. Merged by (objective, then mask, then the
/// order within the mask's sequential enumeration): because any single
/// mask is enumerated serially by one worker, this reproduces the serial
/// sweep's first-wins rule for every thread count.
template <typename ObjectiveBetter>
struct BestSlot {
  std::optional<Mapping> mapping;
  double objective = 0.0;
  std::uint64_t mask = 0;

  void Offer(const Mapping& m, double value, std::uint64_t candidate_mask,
             const ObjectiveBetter& better) {
    if (!mapping || better(value, objective)) {
      mapping = m;
      objective = value;
      mask = candidate_mask;
    }
  }

  void Merge(const BestSlot& other, const ObjectiveBetter& better) {
    if (!other.mapping) return;
    if (!mapping || better(other.objective, objective) ||
        (other.objective == objective && other.mask < mask)) {
      *this = other;
    }
  }
};

}  // namespace

BruteForceMapper::BruteForceMapper(BruteForceOptions options)
    : options_(std::move(options)) {}

MapResult BruteForceMapper::Map(const Evaluator& eval, int total_procs) const {
  const int k = eval.num_tasks();
  const ScopedMetricsEnable observe(options_.base.observe);
  PIPEMAP_TRACE_SPAN("brute.map", "brute", k);
  const ReplicationPolicy policy = options_.base.replication;
  const ProcPredicate& feasible = options_.base.proc_feasible;
  const bool clustering_allowed = options_.base.allow_clustering;
  const int num_threads = ThreadPool::ResolveThreads(options_.base.num_threads);
  const std::uint64_t num_masks = NumClusterings(k, clustering_allowed);

  const auto better = [](double a, double b) { return a > b; };
  using Slot = BestSlot<decltype(better)>;
  std::vector<Slot> best(num_threads);
  std::atomic<std::uint64_t> work{0};
  const Deadline* deadline = options_.base.deadline.get();
  std::atomic<bool> expired{false};

  ParallelFor(
      num_threads, static_cast<std::int64_t>(num_masks),
      ParallelSchedule::kDynamic, 1,
      [&](int worker, std::int64_t begin, std::int64_t end) {
        ForEachClustering(
            k, clustering_allowed, static_cast<std::uint64_t>(begin),
            static_cast<std::uint64_t>(end),
            [&](std::uint64_t mask, const Clustering& clustering) {
          const int l = static_cast<int>(clustering.size());
          // Enumerate budget vectors recursively.
          std::vector<int> budgets(l, 0);
          auto recurse = [&](auto&& self, int idx, int used) -> void {
            if (expired.load(std::memory_order_relaxed)) return;
            if (idx == l) {
              if (deadline != nullptr && deadline->expired()) {
                expired.store(true, std::memory_order_relaxed);
                return;
              }
              if (work.fetch_add(1) + 1 > options_.max_evaluations) {
                throw ResourceLimit(
                    "BruteForceMapper: evaluation cap exceeded");
              }
              const auto mapping =
                  BuildMapping(eval, clustering, budgets, policy, feasible);
              if (!mapping) return;
              best[worker].Offer(*mapping, eval.Throughput(*mapping), mask,
                                 better);
              return;
            }
            for (int b = 1; used + b <= total_procs; ++b) {
              budgets[idx] = b;
              self(self, idx + 1, used + b);
            }
          };
          recurse(recurse, 0, 0);
        });
      });

  const bool timed_out = expired.load(std::memory_order_relaxed);
  Slot winner;
  for (const Slot& s : best) winner.Merge(s, better);
  if (!winner.mapping) {
    if (timed_out) {
      throw ResourceLimit(
          "BruteForceMapper: deadline expired before any feasible mapping "
          "was found");
    }
    throw Infeasible("BruteForceMapper: no valid mapping exists");
  }
  MapResult result;
  result.mapping = *winner.mapping;
  result.throughput = winner.objective;
  result.work = work.load();
  result.timed_out = timed_out;
  PIPEMAP_COUNTER_ADD("brute.evaluations", result.work);
  return result;
}

LatencyBruteResult BruteForceMinLatency(const Evaluator& eval,
                                        int total_procs,
                                        double min_throughput,
                                        const BruteForceOptions& options) {
  const int k = eval.num_tasks();
  const ScopedMetricsEnable observe(options.base.observe);
  PIPEMAP_TRACE_SPAN("brute.min_latency", "brute", k);
  const ProcPredicate& feasible = options.base.proc_feasible;
  const bool clustering_allowed = options.base.allow_clustering;
  const int num_threads = ThreadPool::ResolveThreads(options.base.num_threads);
  const std::uint64_t num_masks = NumClusterings(k, clustering_allowed);

  const auto better = [](double a, double b) { return a < b; };
  using Slot = BestSlot<decltype(better)>;
  std::vector<Slot> best(num_threads);
  std::atomic<std::uint64_t> work{0};
  const Deadline* deadline = options.base.deadline.get();
  std::atomic<bool> expired{false};

  ParallelFor(
      num_threads, static_cast<std::int64_t>(num_masks),
      ParallelSchedule::kDynamic, 1,
      [&](int worker, std::int64_t begin, std::int64_t end) {
        ForEachClustering(
            k, clustering_allowed, static_cast<std::uint64_t>(begin),
            static_cast<std::uint64_t>(end),
            [&](std::uint64_t mask, const Clustering& clustering) {
          const int l = static_cast<int>(clustering.size());
          Mapping mapping;
          mapping.modules.resize(l);
          // Enumerate per-module (instance size, replica count) pairs.
          auto recurse = [&](auto&& self, int idx, int used) -> void {
            if (expired.load(std::memory_order_relaxed)) return;
            if (idx == l) {
              if (deadline != nullptr && deadline->expired()) {
                expired.store(true, std::memory_order_relaxed);
                return;
              }
              if (work.fetch_add(1) + 1 > options.max_evaluations) {
                throw ResourceLimit("BruteForceMinLatency: evaluation cap"
                                    " exceeded");
              }
              if (min_throughput > 0.0 &&
                  eval.Throughput(mapping) < min_throughput) {
                return;
              }
              best[worker].Offer(mapping, eval.Latency(mapping), mask,
                                 better);
              return;
            }
            const auto [first, last] = clustering[idx];
            const int min_p = eval.MinProcs(first, last);
            if (min_p >= kInfeasibleProcs) return;
            const int max_r =
                (options.base.replication != ReplicationPolicy::kNone
                     ? eval.Replicable(first, last)
                     : false)
                    ? (total_procs - used) / min_p
                    : 1;
            for (int r = 1; r <= std::max(1, max_r); ++r) {
              for (int p = min_p; used + r * p <= total_procs; ++p) {
                if (feasible && !feasible(p)) continue;
                mapping.modules[idx] = ModuleAssignment{first, last, r, p};
                self(self, idx + 1, used + r * p);
              }
              if (used + (r + 1) * min_p > total_procs) break;
            }
          };
          recurse(recurse, 0, 0);
        });
      });

  const bool timed_out = expired.load(std::memory_order_relaxed);
  Slot winner;
  for (const Slot& s : best) winner.Merge(s, better);
  if (!winner.mapping) {
    if (timed_out) {
      throw ResourceLimit(
          "BruteForceMinLatency: deadline expired before any feasible "
          "mapping was found");
    }
    throw Infeasible("BruteForceMinLatency: no valid mapping exists");
  }
  LatencyBruteResult result;
  result.latency = winner.objective;
  result.throughput = eval.Throughput(*winner.mapping);
  result.mapping = std::move(*winner.mapping);
  result.work = work.load();
  result.timed_out = timed_out;
  PIPEMAP_COUNTER_ADD("brute.evaluations", result.work);
  return result;
}

}  // namespace pipemap
