// Shared plumbing for the benchmark harness: the paper's workload
// configurations and the standard measurement settings used to reproduce
// its tables.
#pragma once

#include <string>
#include <vector>

#include "sim/pipeline_sim.h"
#include "workloads/fft_hist.h"
#include "workloads/radar.h"
#include "workloads/stereo.h"
#include "workloads/workload.h"

namespace pipemap::bench {

struct NamedWorkload {
  std::string label;
  std::string size;
  Workload workload;
};

/// The four FFT-Hist configurations of Table 1.
inline std::vector<NamedWorkload> FftHistConfigs() {
  return {
      {"FFT-Hist", "256x256",
       workloads::MakeFftHist(256, CommMode::kMessage)},
      {"FFT-Hist", "256x256",
       workloads::MakeFftHist(256, CommMode::kSystolic)},
      {"FFT-Hist", "512x512",
       workloads::MakeFftHist(512, CommMode::kMessage)},
      {"FFT-Hist", "512x512",
       workloads::MakeFftHist(512, CommMode::kSystolic)},
  };
}

/// The six application rows of Table 2.
inline std::vector<NamedWorkload> Table2Configs() {
  std::vector<NamedWorkload> configs = FftHistConfigs();
  configs.push_back(
      {"Radar", "512x10x4", workloads::MakeRadar(CommMode::kSystolic)});
  configs.push_back(
      {"Stereo", "256x100", workloads::MakeStereo(CommMode::kSystolic)});
  return configs;
}

/// Standard "measured" settings: a stream long enough for steady state,
/// with the systematic-bias / jitter / contention noise that stands in for
/// the paper's second-order effects.
inline SimOptions MeasurementSettings(std::uint64_t seed = 20260706) {
  SimOptions options;
  options.num_datasets = 400;
  options.warmup = 150;
  options.noise.systematic_stddev = 0.03;
  options.noise.jitter_stddev = 0.01;
  options.noise.contention_coeff = 0.05;
  options.noise.seed = seed;
  return options;
}

}  // namespace pipemap::bench
