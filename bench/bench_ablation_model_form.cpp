// Ablation: Section-5 polynomial model vs pointwise/interpolated model.
//
// The paper's algorithms are model-agnostic ("they may be mathematical
// functions ... or they may be defined pointwise possibly using
// interpolation"). This bench fits both forms from the same eight training
// runs and compares (a) cost-function accuracy against ground truth and
// (b) the true throughput of the mapping each fitted model selects.
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "profiling/profiler.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Ablation: polynomial vs tabulated fitted models\n");
  std::printf("(both fitted from the same 8 training runs)\n\n");

  TextTable table({"Program", "Size", "Comm", "Poly err %", "Tab err %",
                   "Poly map (true ds/s)", "Tab map (true ds/s)",
                   "True optimum"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const double node_mem = c.workload.machine.node_memory_bytes;
    Profiler profiler(c.workload.chain, P, node_mem);
    ProfilerOptions poly_options;
    poly_options.sim.noise.systematic_stddev = 0.03;
    poly_options.sim.noise.jitter_stddev = 0.01;
    ProfilerOptions tab_options = poly_options;
    tab_options.form = ModelForm::kTabulated;

    const FittedModel poly = profiler.Fit(poly_options);
    const FittedModel tab = profiler.Fit(tab_options);

    const FitQuality poly_q = CompareChainModels(c.workload.chain,
                                                 poly.chain, P);
    const FitQuality tab_q =
        CompareChainModels(c.workload.chain, tab.chain, P);

    const Evaluator truth(c.workload.chain, P, node_mem);
    const Evaluator poly_eval(poly.chain, P, node_mem);
    const Evaluator tab_eval(tab.chain, P, node_mem);
    const double poly_true =
        truth.Throughput(DpMapper().Map(poly_eval, P).mapping);
    const double tab_true =
        truth.Throughput(DpMapper().Map(tab_eval, P).mapping);
    const double optimum = DpMapper().Map(truth, P).throughput;

    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(100 * poly_q.mean_relative_error, 1),
                  TextTable::Num(100 * tab_q.mean_relative_error, 1),
                  TextTable::Num(poly_true, 2), TextTable::Num(tab_true, 2),
                  TextTable::Num(optimum, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: both forms select mappings whose true throughput is\n"
      "close to the optimum. The polynomial generalizes better overall —\n"
      "its 1/p structure extrapolates to unprofiled counts where the\n"
      "tabulated form can only clamp — which supports the paper's choice\n"
      "of the Section-5 parametric model as the default.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
