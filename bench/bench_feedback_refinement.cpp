// Extension benchmark: the feedback-driven tool loop (paper Section 1:
// "Our methodology can be the basis for a feedback driven compile time, or
// a runtime tool"). For each application: iterate fit -> map -> measure ->
// refine, and report prediction error and achieved (true) throughput per
// iteration.
#include <cmath>
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "profiling/profiler.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Extension: feedback refinement loop\n");
  std::printf("(fit from 8 runs -> map -> observe the mapping -> refit)\n\n");

  TextTable table({"Program", "Size", "Comm", "Iter", "Mapping pred ds/s",
                   "Measured ds/s", "Error %", "Of true optimum %"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const double node_mem = c.workload.machine.node_memory_bytes;
    Profiler profiler(c.workload.chain, P, node_mem);
    ProfilerOptions options;
    options.sim.noise.systematic_stddev = 0.03;
    options.sim.noise.jitter_stddev = 0.01;

    PipelineSimulator sim(c.workload.chain);
    SimOptions measure;
    measure.num_datasets = 300;
    measure.warmup = 100;
    measure.noise = options.sim.noise;

    const Evaluator truth(c.workload.chain, P, node_mem);
    const double optimum =
        sim.Run(DpMapper().Map(truth, P).mapping, measure).throughput;

    FittedModel model = profiler.Fit(options);
    for (int iteration = 1; iteration <= 3; ++iteration) {
      const Evaluator eval(model.chain, P, node_mem);
      const MapResult chosen = DpMapper().Map(eval, P);
      const double measured = sim.Run(chosen.mapping, measure).throughput;
      table.AddRow(
          {iteration == 1 ? c.label : "", iteration == 1 ? c.size : "",
           iteration == 1 ? ToString(c.workload.machine.comm_mode) : "",
           TextTable::Num(iteration), TextTable::Num(chosen.throughput, 2),
           TextTable::Num(measured, 2),
           TextTable::Num(
               100.0 * (chosen.throughput - measured) / measured, 1),
           TextTable::Num(100.0 * measured / optimum, 1)});
      model = profiler.Refine(model, chosen.mapping, options);
    }
    table.AddSeparator();
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: prediction error collapses to ~1%% once the model has\n"
      "observed its own chosen mapping, and the achieved throughput climbs\n"
      "toward the true optimum — the closed tool loop the paper proposes.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
