// Parallel-scaling and incremental re-solve regression harness for the DP
// mapping engine.
//
// Part 1 runs the throughput DP on a P >= 128, k >= 16 synthetic chain at
// the full 1..8 thread ladder, verifies every run returns the identical
// mapping and objective (the engine's determinism contract), and records
// per-worker work shares so partition imbalance is tracked alongside wall
// time. The ladder is NOT clamped to the visible core count: determinism
// must hold oversubscribed too, so runs beyond the available concurrency
// execute and are flagged `oversubscribed` in the JSON (their wall times
// measure scheduling noise, not scaling, and downstream tooling skips
// them). `hardware_threads` reports ThreadPool::AvailableConcurrency() —
// the affinity-aware count the mappers actually use, overridable with
// PIPEMAP_HARDWARE_THREADS — not the raw cpuinfo count.
//
// Part 2 measures the incremental re-solve path: solve once with sweep
// capture on, perturb the last edge's communication costs, and re-solve
// warm (suffix-only re-sweep) vs cold. The warm result must be
// byte-identical to the cold one — mapping, throughput, and provenance are
// all compared — and the speedup is recorded.
//
// Exit status is nonzero when any thread count changes the mapping or the
// warm re-solve diverges from cold — never when a speedup is small,
// because measured speedup is a property of the host; the JSON carries
// enough context (`hardware_threads`, `oversubscribed`) for tooling to
// judge the numbers.
//
// Usage: bench_dp_parallel_scaling [output.json] [P] [k]
//        defaults: BENCH_dp_parallel.json 128 16
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/warm_start.h"
#include "costmodel/cost_function.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

struct ThreadSample {
  int threads = 0;
  bool oversubscribed = false;
  double wall_s = 0.0;
  double speedup = 1.0;
  std::uint64_t work = 0;
  std::uint64_t pruned_cells = 0;
  double throughput = 0.0;
  double work_imbalance = 1.0;
  std::vector<std::uint64_t> worker_work;
  std::string mapping;
};

struct IncrementalSample {
  double cold_wall_s = 0.0;
  double warm_wall_s = 0.0;
  double speedup = 1.0;
  bool used_sweep_prefix = false;
  int resweep_from = -1;
  bool identical = false;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// max(worker share) / mean(worker share): 1.0 is a perfect partition.
double WorkImbalance(const std::vector<std::uint64_t>& shares) {
  if (shares.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t w : shares) {
    max = std::max(max, w);
    total += w;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shares.size());
  return static_cast<double>(max) / mean;
}

/// The chain with the last edge's communication costs scaled by `factor`:
/// a suffix-only cost perturbation, so an incremental re-solve may reuse
/// every stage except the final one.
TaskChain PerturbLastEdge(const TaskChain& chain, double factor) {
  const int edge = chain.size() - 2;
  ChainCostModel costs = chain.costs();
  std::shared_ptr<ScalarCost> icom(costs.IComFn(edge).Clone());
  std::shared_ptr<PairCost> ecom(costs.EComFn(edge).Clone());
  costs.SetEdge(
      edge,
      std::make_unique<CallbackScalarCost>(
          [icom, factor](int p) { return icom->Eval(p) * factor; }),
      std::make_unique<CallbackPairCost>([ecom, factor](int s, int r) {
        return ecom->Eval(s, r) * factor;
      }));
  return chain.WithCosts(std::move(costs));
}

int Run(const std::string& out_path, int procs, int num_tasks) {
  workloads::SyntheticSpec spec;
  spec.num_tasks = num_tasks;
  spec.machine_procs = procs;
  spec.comm_comp_ratio = 0.35;
  spec.memory_tightness = 0.2;
  spec.replicable_fraction = 0.8;
  const Workload w = workloads::MakeSynthetic(spec, 20260805);

  const int avail = ThreadPool::AvailableConcurrency();
  // A PIPEMAP_HARDWARE_THREADS override can claim more workers than the
  // affinity mask grants; oversubscription is judged against the smaller
  // of the two so the flag stays honest either way.
  const int physical = std::min(avail, ThreadPool::HardwareConcurrency());
  std::printf("DP parallel scaling: P=%d, k=%d (host has %d available"
              " thread%s, %d physical)\n\n",
              procs, num_tasks, avail, avail == 1 ? "" : "s", physical);

  // The big table pays for itself here; clustering is off so the stage
  // grid stays k blocks of (P+1)^3 states. Warm the evaluator once (its
  // tabulation is timed separately from the DP proper).
  const Evaluator eval(w.chain, procs, w.machine.node_memory_bytes,
                       /*num_threads=*/0);

  MetricsRegistry::Global().Reset();

  std::vector<ThreadSample> samples;
  for (int threads = 1; threads <= 8; threads *= 2) {
    MapperOptions options;
    options.allow_clustering = false;
    options.num_threads = threads;
    options.observe = true;
    const DpMapper mapper(options);
    const double start = Now();
    const MapResult r = mapper.Map(eval, procs);
    const double wall = Now() - start;
    ThreadSample s;
    s.threads = threads;
    s.oversubscribed = threads > physical;
    s.wall_s = wall;
    s.work = r.work;
    s.pruned_cells = r.pruned_cells;
    s.throughput = r.throughput;
    s.worker_work = r.worker_work;
    s.work_imbalance = WorkImbalance(r.worker_work);
    s.mapping = r.mapping.ToString(w.chain);
    samples.push_back(std::move(s));
    std::printf("  %d thread%s: %8.3f s   work=%llu  pruned=%llu"
                "  imbalance=%.3f%s\n",
                threads, threads == 1 ? " " : "s", wall,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.pruned_cells),
                samples.back().work_imbalance,
                samples.back().oversubscribed ? "  (oversubscribed)" : "");
  }

  bool identical = true;
  for (ThreadSample& s : samples) {
    s.speedup = samples.front().wall_s / s.wall_s;
    identical = identical && s.mapping == samples.front().mapping &&
                s.throughput == samples.front().throughput;
  }
  std::printf("\n  speedup at %d threads: %.2fx\n", samples.back().threads,
              samples.back().speedup);
  std::printf("  identical mappings across thread counts: %s\n",
              identical ? "yes" : "NO — determinism contract violated");

  // Incremental re-solve: capture the sweep on the base chain, perturb the
  // last edge, and compare a warm (suffix-only) re-solve against a cold
  // one. Single-threaded on both sides so the ratio isolates the algorithm.
  IncrementalSample inc;
  {
    MapperOptions options;
    options.allow_clustering = false;
    options.num_threads = 1;
    options.incremental = true;
    options.warm = std::make_shared<WarmStartState>();
    const DpMapper warm_mapper(options);
    warm_mapper.Map(eval, procs);  // capture pass

    const TaskChain perturbed = PerturbLastEdge(w.chain, 1.05);
    const Evaluator peval(perturbed, procs, w.machine.node_memory_bytes,
                          /*num_threads=*/0);

    MapperOptions cold_options;
    cold_options.allow_clustering = false;
    cold_options.num_threads = 1;
    const DpMapper cold_mapper(cold_options);
    const double cold_start = Now();
    const MapResult cold = cold_mapper.Map(peval, procs);
    inc.cold_wall_s = Now() - cold_start;

    const double warm_start = Now();
    const MapResult warm = warm_mapper.Map(peval, procs);
    inc.warm_wall_s = Now() - warm_start;

    inc.speedup = inc.warm_wall_s > 0.0 ? inc.cold_wall_s / inc.warm_wall_s
                                        : 0.0;
    inc.used_sweep_prefix = warm.used_sweep_prefix;
    inc.resweep_from = warm.resweep_from;
    inc.identical =
        warm.mapping.ToString(perturbed) == cold.mapping.ToString(perturbed) &&
        warm.throughput == cold.throughput;
    std::printf("\n  incremental re-solve (last-edge perturbation):\n");
    std::printf("    cold %.3f s,  warm %.3f s  ->  %.1fx"
                "  (prefix reused: %s, re-swept from stage %d)\n",
                inc.cold_wall_s, inc.warm_wall_s, inc.speedup,
                inc.used_sweep_prefix ? "yes" : "NO", inc.resweep_from);
    std::printf("    warm identical to cold: %s\n",
                inc.identical ? "yes" : "NO — incremental contract violated");
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter jw;
  jw.BeginObject();
  jw.Key("bench").String("bench_dp_parallel_scaling");
  jw.Key("procs").Int(procs);
  jw.Key("num_tasks").Int(num_tasks);
  jw.Key("hardware_threads").Int(avail);
  jw.Key("physical_threads").Int(physical);
  jw.Key("identical_mappings").Bool(identical);
  jw.Key("mapping").String(samples.front().mapping);
  jw.Key("runs").BeginArray();
  for (const ThreadSample& s : samples) {
    jw.BeginObject();
    jw.Key("threads").Int(s.threads);
    jw.Key("oversubscribed").Bool(s.oversubscribed);
    jw.Key("wall_s").Double(s.wall_s);
    jw.Key("speedup").Double(s.speedup);
    jw.Key("work").UInt(s.work);
    jw.Key("pruned_cells").UInt(s.pruned_cells);
    jw.Key("throughput").Double(s.throughput);
    jw.Key("work_imbalance").Double(s.work_imbalance);
    jw.Key("worker_work").BeginArray();
    for (const std::uint64_t share : s.worker_work) jw.UInt(share);
    jw.EndArray();
    jw.EndObject();
  }
  jw.EndArray();
  jw.Key("incremental").BeginObject();
  jw.Key("cold_wall_s").Double(inc.cold_wall_s);
  jw.Key("warm_wall_s").Double(inc.warm_wall_s);
  jw.Key("speedup").Double(inc.speedup);
  jw.Key("used_sweep_prefix").Bool(inc.used_sweep_prefix);
  jw.Key("resweep_from").Int(inc.resweep_from);
  jw.Key("identical_to_cold").Bool(inc.identical);
  jw.EndObject();
  jw.Key("metrics").Raw(MetricsRegistry::Global().Snapshot().ToJson());
  jw.EndObject();
  out << jw.str();
  std::printf("  wrote %s\n", out_path.c_str());
  return identical && inc.identical ? 0 : 2;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_dp_parallel.json";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 128;
  const int num_tasks = argc > 3 ? std::atoi(argv[3]) : 16;
  return pipemap::bench::Run(out, procs, num_tasks);
}
