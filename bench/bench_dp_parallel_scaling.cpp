// Parallel-scaling regression harness for the DP mapping engine.
//
// Runs the throughput DP on a P >= 128, k >= 16 synthetic chain at a
// ladder of thread counts clamped to the host's hardware concurrency,
// verifies every run returns the identical mapping and objective (the
// engine's determinism contract), and writes the wall times, speedups,
// work counters and a metrics snapshot (support/metrics.h) to a
// machine-readable JSON file so the perf trajectory is tracked PR over
// PR. Exit status is nonzero when any thread count changes the mapping —
// never when the speedup is small, because the measured speedup is a
// property of the host (a single-core CI box cannot show one); the JSON
// records `hardware_threads` so downstream tooling can judge the numbers
// in context.
//
// Usage: bench_dp_parallel_scaling [output.json] [P] [k]
//        defaults: BENCH_dp_parallel.json 128 16
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

struct ThreadSample {
  int threads = 0;
  double wall_s = 0.0;
  double speedup = 1.0;
  std::uint64_t work = 0;
  std::uint64_t pruned_cells = 0;
  double throughput = 0.0;
  std::string mapping;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run(const std::string& out_path, int procs, int num_tasks) {
  workloads::SyntheticSpec spec;
  spec.num_tasks = num_tasks;
  spec.machine_procs = procs;
  spec.comm_comp_ratio = 0.35;
  spec.memory_tightness = 0.2;
  spec.replicable_fraction = 0.8;
  const Workload w = workloads::MakeSynthetic(spec, 20260805);

  const int hw = ThreadPool::HardwareConcurrency();
  std::printf("DP parallel scaling: P=%d, k=%d (host has %d hardware"
              " threads)\n\n",
              procs, num_tasks, hw);

  // Thread ladder: powers of two up to the host's concurrency. Running
  // more software threads than cores only measures oversubscription
  // noise, so the ladder is clamped; the host core count is recorded in
  // the JSON so the numbers stay interpretable across machines.
  std::vector<int> thread_counts;
  for (int t = 1; t <= hw && t <= 8; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != hw && hw < 8) thread_counts.push_back(hw);

  // The big table pays for itself here; clustering is off so the stage
  // grid stays k blocks of (P+1)^3 states. Warm the evaluator once (its
  // tabulation is timed separately from the DP proper).
  const Evaluator eval(w.chain, procs, w.machine.node_memory_bytes,
                       /*num_threads=*/0);

  MetricsRegistry::Global().Reset();

  std::vector<ThreadSample> samples;
  for (const int threads : thread_counts) {
    MapperOptions options;
    options.allow_clustering = false;
    options.num_threads = threads;
    options.observe = true;
    const DpMapper mapper(options);
    const double start = Now();
    const MapResult r = mapper.Map(eval, procs);
    const double wall = Now() - start;
    ThreadSample s;
    s.threads = threads;
    s.wall_s = wall;
    s.work = r.work;
    s.pruned_cells = r.pruned_cells;
    s.throughput = r.throughput;
    s.mapping = r.mapping.ToString(w.chain);
    samples.push_back(s);
    std::printf("  %d thread%s: %8.3f s   work=%llu  pruned=%llu\n", threads,
                threads == 1 ? " " : "s", wall,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.pruned_cells));
  }

  bool identical = true;
  for (ThreadSample& s : samples) {
    s.speedup = samples.front().wall_s / s.wall_s;
    identical = identical && s.mapping == samples.front().mapping &&
                s.throughput == samples.front().throughput;
  }
  std::printf("\n  speedup at %d threads: %.2fx\n", samples.back().threads,
              samples.back().speedup);
  std::printf("  identical mappings across thread counts: %s\n",
              identical ? "yes" : "NO — determinism contract violated");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter jw;
  jw.BeginObject();
  jw.Key("bench").String("bench_dp_parallel_scaling");
  jw.Key("procs").Int(procs);
  jw.Key("num_tasks").Int(num_tasks);
  jw.Key("hardware_threads").Int(ThreadPool::HardwareConcurrency());
  jw.Key("identical_mappings").Bool(identical);
  jw.Key("mapping").String(samples.front().mapping);
  jw.Key("runs").BeginArray();
  for (const ThreadSample& s : samples) {
    jw.BeginObject();
    jw.Key("threads").Int(s.threads);
    jw.Key("wall_s").Double(s.wall_s);
    jw.Key("speedup").Double(s.speedup);
    jw.Key("work").UInt(s.work);
    jw.Key("pruned_cells").UInt(s.pruned_cells);
    jw.Key("throughput").Double(s.throughput);
    jw.EndObject();
  }
  jw.EndArray();
  jw.Key("metrics").Raw(MetricsRegistry::Global().Snapshot().ToJson());
  jw.EndObject();
  out << jw.str();
  std::printf("  wrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_dp_parallel.json";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 128;
  const int num_tasks = argc > 3 ? std::atoi(argv[3]) : 16;
  return pipemap::bench::Run(out, procs, num_tasks);
}
