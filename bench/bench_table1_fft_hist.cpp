// Reproduces paper Table 1: "Optimal and Feasible Optimal Mappings for
// FFT-Hist" — for each (data-set size, communication mode) configuration,
// the dynamic-programming optimal mapping (per-module processors p_i and
// replication r_i, predicted throughput) and the feasible-optimal mapping
// under the machine's rectangular-subarray, packing, and (systolic)
// pathway constraints.
#include <cstdio>

#include "core/evaluator.h"
#include "engine/mapping_engine.h"
#include "machine/feasible.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

std::string ModuleColumn(const Mapping& mapping, int module) {
  if (module >= mapping.num_modules()) return "-";
  const ModuleAssignment& m = mapping.modules[module];
  return "p=" + std::to_string(m.procs_per_instance) +
         " r=" + std::to_string(m.replicas);
}

std::string Tasks(const Mapping& mapping, const TaskChain& chain,
                  int module) {
  if (module >= mapping.num_modules()) return "-";
  const ModuleAssignment& m = mapping.modules[module];
  std::string out;
  for (int t = m.first_task; t <= m.last_task; ++t) {
    if (!out.empty()) out += "+";
    out += chain.task(t).name;
  }
  return out;
}

int Run() {
  std::printf("Table 1: Optimal and Feasible Optimal Mappings for FFT-Hist\n");
  std::printf("(paper: module 1 = colffts, module 2 = rowffts+hist; the\n");
  std::printf(" feasible mapping may differ when an instance size has no\n");
  std::printf(" rectangle on the 8x8 array, e.g. 13 processors)\n\n");

  TextTable table({"Data set", "Comm", "Module 1", "Module 2", "Module 3",
                   "Thr (ds/s)", "Feas M1", "Feas M2", "Feas M3",
                   "Feas thr"});
  MappingEngine& engine = MappingEngine::Shared();
  for (const NamedWorkload& c : FftHistConfigs()) {
    const int P = c.workload.machine.total_procs();
    const Evaluator eval(c.workload.chain, P,
                         c.workload.machine.node_memory_bytes);
    MapRequest request;
    request.chain = &c.workload.chain;
    request.machine = c.workload.machine;
    request.solver = SolverPolicy::kDp;
    request.machine_feasibility = false;
    const MapResponse optimal = engine.Map(request);

    const FeasibilityChecker checker(c.workload.machine);
    request.machine_feasibility = true;
    const MapResponse rect = engine.Map(request);
    const Mapping feasible = checker.MakeFeasible(rect.mapping, eval);

    table.AddRow({c.size, ToString(c.workload.machine.comm_mode),
                  Tasks(optimal.mapping, c.workload.chain, 0) + " " +
                      ModuleColumn(optimal.mapping, 0),
                  Tasks(optimal.mapping, c.workload.chain, 1) + " " +
                      ModuleColumn(optimal.mapping, 1),
                  ModuleColumn(optimal.mapping, 2),
                  TextTable::Num(optimal.throughput, 2),
                  ModuleColumn(feasible, 0), ModuleColumn(feasible, 1),
                  ModuleColumn(feasible, 2),
                  TextTable::Num(eval.Throughput(feasible), 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nPaper shape check: 256x256 clusters rowffts+hist into one module\n"
      "with many small replicated instances; 512x512 memory minima force\n"
      "larger instances and lower replication; feasible throughput is\n"
      "within a few percent of (message) or moderately below (systolic,\n"
      "pathway-capacity-limited) the unconstrained optimum.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
