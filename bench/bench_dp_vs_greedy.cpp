// Reproduces the Section 6.3 key algorithmic result: "for all cases the
// dynamic programming and the greedy algorithms reached the same optimal
// mapping", plus a broader synthetic sweep quantifying how often and how
// closely the O(Pk) greedy heuristic matches the O(P^4 k^2) optimum.
#include <cstdio>

#include "engine/mapping_engine.h"
#include "support/table.h"
#include "workloads/synthetic.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

/// Both algorithms through the engine facade, on the unconstrained
/// processor budget the paper's comparison uses.
MapResponse Solve(const Workload& w, int procs, SolverPolicy solver) {
  MapRequest request;
  request.chain = &w.chain;
  request.machine = w.machine;
  request.total_procs = procs;
  request.solver = solver;
  request.machine_feasibility = false;
  return MappingEngine::Shared().Map(request);
}

int Run() {
  std::printf("Section 6.3: dynamic programming vs greedy heuristic\n\n");
  std::printf("Application workloads:\n");
  TextTable table({"Program", "Size", "Comm", "DP ds/s", "Greedy ds/s",
                   "Ratio", "Same mapping", "DP work", "Greedy work"});
  int exact = 0, total = 0;
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const MapResponse dp = Solve(c.workload, P, SolverPolicy::kDp);
    const MapResponse greedy = Solve(c.workload, P, SolverPolicy::kGreedy);
    const bool same = dp.mapping == greedy.mapping;
    exact += same ? 1 : 0;
    ++total;
    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(dp.throughput, 2),
                  TextTable::Num(greedy.throughput, 2),
                  TextTable::Num(greedy.throughput / dp.throughput, 3),
                  same ? "yes" : "no",
                  std::to_string(dp.work), std::to_string(greedy.work)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("Identical mappings: %d / %d\n\n", exact, total);

  std::printf("Synthetic sweep (40 random chains, k=2..5, P=32):\n");
  int sweep_exact = 0;
  double worst_ratio = 1.0, ratio_sum = 0.0;
  const int kSweep = 40;
  for (int seed = 0; seed < kSweep; ++seed) {
    workloads::SyntheticSpec spec;
    spec.num_tasks = 2 + seed % 4;
    spec.machine_procs = 32;
    spec.comm_comp_ratio = 0.2 + 0.15 * (seed % 5);
    spec.memory_tightness = 0.25;
    spec.replicable_fraction = 0.8;
    const Workload w = workloads::MakeSynthetic(spec, 7000 + seed);
    const MapResponse dp = Solve(w, 32, SolverPolicy::kDp);
    const MapResponse greedy = Solve(w, 32, SolverPolicy::kGreedy);
    const double ratio = greedy.throughput / dp.throughput;
    ratio_sum += ratio;
    worst_ratio = std::min(worst_ratio, ratio);
    if (ratio > 1.0 - 1e-9) ++sweep_exact;
  }
  std::printf("  optimal throughput reached: %d / %d chains\n", sweep_exact,
              kSweep);
  std::printf("  mean greedy/DP throughput ratio: %.4f\n",
              ratio_sum / kSweep);
  std::printf("  worst ratio: %.4f\n", worst_ratio);
  std::printf(
      "\nShape check: greedy reaches the DP optimum on most instances and\n"
      "stays within a few percent otherwise, at orders of magnitude less\n"
      "work — the paper's justification for using it in practice.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
