// Fault-recovery harness (writes BENCH_fault_recovery.json).
//
// Measures what a processor crash costs and how fast the RepairEngine
// restores service, on the Table-2 applications. For each workload:
//
//   1. Map the healthy problem, then crash one instance of the first
//      module (the paper's pipelines put a replicated stage there) and of
//      the widest module.
//   2. Repair under each policy — drop-replica (instant, degraded),
//      full remap (re-solve on the survivors), throughput floor
//      (drop-replica if good enough, else escalate) — and record the
//      recovery latency and the throughput retention.
//   3. Time the full-remap repair twice: COLD through a fresh engine
//      (empty solution cache, no warm tables) and WARM through the engine
//      that already solved the healthy problem, so the JSON tracks how
//      much the reuse layers buy during recovery, when latency actually
//      matters.
//
// Exit status is nonzero when a repaired mapping fails validation or
// overruns the surviving processors — never on small speedups, which are
// host-dependent; the JSON records the wall times so the trajectory is
// tracked PR over PR.
//
// Usage: bench_fault_recovery [output.json] [reps]
//        defaults: BENCH_fault_recovery.json 3
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/mapping_engine.h"
#include "fault/repair.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PolicySample {
  std::string policy;
  double recovery_s = 0.0;
  double retention = 0.0;
  int attempts = 0;
  bool degraded = false;
  bool valid = true;
};

struct ScenarioSample {
  std::string label;
  std::string size;
  std::string comm;
  int failed_module = 0;
  int lost_procs = 0;
  std::vector<PolicySample> policies;
  double cold_remap_s = 0.0;
  double warm_remap_s = 0.0;
  double cold_retention = 0.0;
  double warm_retention = 0.0;
};

/// The widest module: losing an instance there is the expensive crash.
int WidestModule(const Mapping& mapping) {
  int widest = 0;
  for (int m = 1; m < mapping.num_modules(); ++m) {
    if (mapping.modules[m].replicas > mapping.modules[widest].replicas) {
      widest = m;
    }
  }
  return widest;
}

int Run(const std::string& out_path, int reps) {
  std::printf("Fault recovery: crash one instance, repair, measure"
              " (best of %d)\n\n", reps);

  std::vector<ScenarioSample> scenarios;
  bool all_valid = true;
  for (const NamedWorkload& c : Table2Configs()) {
    MappingEngine warm_engine;
    MapRequest healthy;
    healthy.chain = &c.workload.chain;
    healthy.machine = c.workload.machine;
    const Mapping mapped = warm_engine.Map(healthy).mapping;

    std::vector<int> failed_modules = {0};
    if (WidestModule(mapped) != 0) failed_modules.push_back(WidestModule(mapped));
    for (const int failed_module : failed_modules) {
      ScenarioSample s;
      s.label = c.label;
      s.size = c.size;
      s.comm = ToString(c.workload.machine.comm_mode);
      s.failed_module = failed_module;
      s.lost_procs = mapped.modules[failed_module].procs_per_instance;

      RepairRequest base;
      base.chain = &c.workload.chain;
      base.machine = c.workload.machine;
      base.failed_mapping = mapped;
      base.failed_module = failed_module;
      base.failed_instances = 1;

      for (const RepairPolicy policy :
           {RepairPolicy::kDropReplica, RepairPolicy::kFullRemap,
            RepairPolicy::kThroughputFloor}) {
        RepairRequest request = base;
        request.policy = policy;
        PolicySample p;
        p.policy = ToString(policy);
        p.recovery_s = std::numeric_limits<double>::infinity();
        try {
          for (int rep = 0; rep < reps; ++rep) {
            const RepairOutcome outcome = RepairEngine(&warm_engine).Repair(request);
            p.recovery_s = std::min(p.recovery_s, outcome.repair_seconds);
            p.retention = outcome.throughput_retention;
            p.attempts = outcome.attempts;
            p.degraded = outcome.degraded;
            p.valid = outcome.mapping.IsValidFor(c.workload.chain.size());
          }
        } catch (const Error& e) {
          std::fprintf(stderr, "%s %s policy %s: %s\n", s.label.c_str(),
                       s.size.c_str(), p.policy.c_str(), e.what());
          p.valid = false;
        }
        all_valid = all_valid && p.valid;
        s.policies.push_back(std::move(p));
      }

      // Cold vs warm full remap: a fresh engine per repair against the
      // engine that already holds the healthy solve's cache and tables.
      RepairRequest remap = base;
      remap.policy = RepairPolicy::kFullRemap;
      s.cold_remap_s = std::numeric_limits<double>::infinity();
      s.warm_remap_s = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < reps; ++rep) {
        MappingEngine cold_engine;
        const double cold_start = Now();
        const RepairOutcome cold = RepairEngine(&cold_engine).Repair(remap);
        s.cold_remap_s = std::min(s.cold_remap_s, Now() - cold_start);
        s.cold_retention = cold.throughput_retention;

        const double warm_start = Now();
        const RepairOutcome warm = RepairEngine(&warm_engine).Repair(remap);
        s.warm_remap_s = std::min(s.warm_remap_s, Now() - warm_start);
        s.warm_retention = warm.throughput_retention;
      }

      std::printf("%-10s %-9s %-9s m%d (-%d procs)  drop %6.3f ms (ret"
                  " %.3f)  remap %6.3f ms (ret %.3f)  cold %7.2f ms /"
                  " warm %7.2f ms (%.1fx)\n",
                  s.label.c_str(), s.size.c_str(), s.comm.c_str(),
                  s.failed_module, s.lost_procs,
                  1e3 * s.policies[0].recovery_s, s.policies[0].retention,
                  1e3 * s.policies[1].recovery_s, s.policies[1].retention,
                  1e3 * s.cold_remap_s, 1e3 * s.warm_remap_s,
                  s.cold_remap_s / s.warm_remap_s);
      scenarios.push_back(std::move(s));
    }
  }

  std::printf("\nall repaired mappings valid on the survivors: %s\n",
              all_valid ? "yes" : "NO");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("bench_fault_recovery");
  w.Key("reps").Int(reps);
  w.Key("all_valid").Bool(all_valid);
  w.Key("scenarios").BeginArray();
  for (const ScenarioSample& s : scenarios) {
    w.BeginObject();
    w.Key("program").String(s.label);
    w.Key("size").String(s.size);
    w.Key("comm").String(s.comm);
    w.Key("failed_module").Int(s.failed_module);
    w.Key("lost_procs").Int(s.lost_procs);
    w.Key("policies").BeginArray();
    for (const PolicySample& p : s.policies) {
      w.BeginObject();
      w.Key("policy").String(p.policy);
      w.Key("recovery_s").Double(p.recovery_s);
      w.Key("throughput_retention").Double(p.retention);
      w.Key("attempts").Int(p.attempts);
      w.Key("degraded").Bool(p.degraded);
      w.Key("valid").Bool(p.valid);
      w.EndObject();
    }
    w.EndArray();
    w.Key("full_remap").BeginObject();
    w.Key("cold_s").Double(s.cold_remap_s);
    w.Key("warm_s").Double(s.warm_remap_s);
    w.Key("warm_speedup").Double(s.cold_remap_s / s.warm_remap_s);
    w.Key("cold_retention").Double(s.cold_retention);
    w.Key("warm_retention").Double(s.warm_retention);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << w.str();
  std::printf("wrote %s\n", out_path.c_str());
  return all_valid ? 0 : 2;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_fault_recovery.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  return pipemap::bench::Run(out, reps);
}
