// Reproduces the paper's Section-2.1 modeling claim: "other factors like
// processor locations and interference with external communication are a
// second order effect even for communication intensive programs."
//
// For each application's optimal mapping: pack the instances onto the
// grid, then simulate with per-hop routing latency and link-sharing
// penalties layered onto the location-blind cost model, and report how
// much the location-blind prediction misses.
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "machine/feasible.h"
#include "sim/placed_sim.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Section 2.1: are processor locations second-order?\n\n");

  TextTable table({"Program", "Size", "Comm", "Blind ds/s", "Placed ds/s",
                   "Location cost %", "Placed 3x worse model %"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const Evaluator eval(c.workload.chain, P,
                         c.workload.machine.node_memory_bytes);
    const FeasibilityChecker checker(c.workload.machine);
    MapperOptions options;
    options.proc_feasible = checker.ProcCountPredicate();
    const MapResult dp = DpMapper(options).Map(eval, P);
    const Mapping mapping = checker.MakeFeasible(dp.mapping, eval);
    const PackResult packing =
        PackInstances(mapping, c.workload.machine.grid_rows,
                      c.workload.machine.grid_cols);
    if (!packing.success) {
      table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                    "-", "-", "unpackable", "-"});
      continue;
    }

    SimOptions soptions;
    soptions.num_datasets = 300;
    soptions.warmup = 100;
    const double blind =
        PipelineSimulator(c.workload.chain).Run(mapping, soptions).throughput;
    const double placed =
        PlacedSimulator(c.workload.chain, c.workload.machine,
                        packing.placements)
            .Run(mapping, soptions)
            .throughput;
    // Sensitivity: triple the location parameters.
    LocationModel heavy;
    heavy.per_hop_latency_s *= 3.0;
    heavy.link_share_penalty *= 3.0;
    const double placed_heavy =
        PlacedSimulator(c.workload.chain, c.workload.machine,
                        packing.placements, heavy)
            .Run(mapping, soptions)
            .throughput;

    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(blind, 2), TextTable::Num(placed, 2),
                  TextTable::Num(100.0 * (blind - placed) / blind, 2),
                  TextTable::Num(100.0 * (blind - placed_heavy) / blind,
                                 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: location effects cost single-digit percent even for\n"
      "communication-intensive mappings, and stay small under a 3x harsher\n"
      "location model — supporting the paper's decision to keep processor\n"
      "locations out of the mapping cost model.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
