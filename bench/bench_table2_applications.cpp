// Reproduces paper Table 2: "Performance Results" — for each application
// configuration: the predicted optimal throughput (dynamic program on the
// profile-fitted cost model), the measured throughput of that mapping (the
// ground-truth simulator with noise and contention), the percentage
// difference, the measured throughput of the pure data-parallel mapping,
// and the optimal/data-parallel ratio.
#include <cstdio>

#include "core/baseline.h"
#include "core/evaluator.h"
#include "engine/mapping_engine.h"
#include "machine/feasible.h"
#include "profiling/profiler.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Table 2: Performance Results\n");
  std::printf("(methodology: 8 profiled training runs -> Section-5 model\n");
  std::printf(" fit -> DP mapping on the fitted model -> measured on the\n");
  std::printf(" ground-truth simulator; paper reports 0-12%% prediction\n");
  std::printf(" error and 2-9x gain over pure data parallelism)\n\n");

  TextTable table({"Program", "Size", "Comm", "Predicted", "Measured",
                   "Diff %", "DataPar", "Ratio"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const double node_mem = c.workload.machine.node_memory_bytes;

    // Profile and fit against the real (simulated) machine.
    Profiler profiler(c.workload.chain, P, node_mem);
    ProfilerOptions poptions;
    poptions.sim.noise.systematic_stddev = 0.03;
    poptions.sim.noise.jitter_stddev = 0.01;
    const FittedModel model = profiler.Fit(poptions);

    // Predict the optimal mapping from the fitted model, restricted to
    // machine-feasible configurations.
    const FeasibilityChecker checker(c.workload.machine);
    const Evaluator fitted_eval(model.chain, P, node_mem);
    MapRequest request;
    request.chain = &model.chain;
    request.machine = c.workload.machine;
    request.solver = SolverPolicy::kDp;
    const MapResponse predicted = MappingEngine::Shared().Map(request);
    const Mapping mapping =
        checker.MakeFeasible(predicted.mapping, fitted_eval);
    const double predicted_throughput = fitted_eval.Throughput(mapping);

    // Measure on the ground-truth simulator.
    PipelineSimulator sim(c.workload.chain);
    const SimOptions soptions = MeasurementSettings();
    const double measured = sim.Run(mapping, soptions).throughput;

    // Pure data parallelism, measured the same way.
    const Evaluator truth_eval(c.workload.chain, P, node_mem);
    const MapResult data_parallel = DataParallelMapping(truth_eval, P);
    const double dp_measured =
        sim.Run(data_parallel.mapping, soptions).throughput;

    const double diff =
        100.0 * (measured - predicted_throughput) / predicted_throughput;
    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(predicted_throughput, 2),
                  TextTable::Num(measured, 2), TextTable::Num(diff, 2),
                  TextTable::Num(dp_measured, 2),
                  TextTable::Num(measured / dp_measured, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
