// Algorithm runtime scaling (Sections 3 and 4): the dynamic program costs
// O(P^4 k^2) (O(P^4 k) without clustering) while the greedy heuristic is
// O(P k) — "this computation cost can be unacceptably high when the number
// of processors is large, particularly when mapping tasks dynamically."
//
// google-benchmark timings over P for both mappers, plus k-scaling at
// fixed P.
#include <benchmark/benchmark.h>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/greedy_mapper.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

Workload ChainFor(int num_tasks, int procs) {
  workloads::SyntheticSpec spec;
  spec.num_tasks = num_tasks;
  spec.machine_procs = procs;
  spec.comm_comp_ratio = 0.4;
  spec.memory_tightness = 0.15;
  return workloads::MakeSynthetic(spec, 12345);
}

void BM_DpMapperVsProcs(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const Workload w = ChainFor(3, procs);
  const Evaluator eval(w.chain, procs, w.machine.node_memory_bytes);
  DpMapper mapper;
  std::uint64_t work = 0;
  for (auto _ : state) {
    const MapResult r = mapper.Map(eval, procs);
    work = r.work;
    benchmark::DoNotOptimize(r.throughput);
  }
  state.counters["dp_transitions"] = static_cast<double>(work);
}
BENCHMARK(BM_DpMapperVsProcs)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_DpAssignOnlyVsProcs(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const Workload w = ChainFor(3, procs);
  const Evaluator eval(w.chain, procs, w.machine.node_memory_bytes);
  MapperOptions options;
  options.allow_clustering = false;
  DpMapper mapper(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.Map(eval, procs).throughput);
  }
}
BENCHMARK(BM_DpAssignOnlyVsProcs)->Arg(16)->Arg(32)->Arg(64)->Arg(96);

void BM_GreedyMapperVsProcs(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const Workload w = ChainFor(3, procs);
  const Evaluator eval(w.chain, procs, w.machine.node_memory_bytes);
  GreedyMapper mapper;
  std::uint64_t work = 0;
  for (auto _ : state) {
    const MapResult r = mapper.Map(eval, procs);
    work = r.work;
    benchmark::DoNotOptimize(r.throughput);
  }
  state.counters["greedy_steps"] = static_cast<double>(work);
}
BENCHMARK(BM_GreedyMapperVsProcs)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512);

void BM_DpMapperVsTasks(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Workload w = ChainFor(k, 24);
  const Evaluator eval(w.chain, 24, w.machine.node_memory_bytes);
  DpMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.Map(eval, 24).throughput);
  }
}
BENCHMARK(BM_DpMapperVsTasks)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_GreedyMapperVsTasks(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Workload w = ChainFor(k, 24);
  const Evaluator eval(w.chain, 24, w.machine.node_memory_bytes);
  GreedyMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.Map(eval, 24).throughput);
  }
}
BENCHMARK(BM_GreedyMapperVsTasks)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_EvaluatorThroughput(benchmark::State& state) {
  const Workload w = ChainFor(4, 64);
  const Evaluator eval(w.chain, 64, w.machine.node_memory_bytes);
  Mapping m;
  m.modules.push_back(ModuleAssignment{0, 1, 4, 8});
  m.modules.push_back(ModuleAssignment{2, 3, 2, 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Throughput(m));
  }
}
BENCHMARK(BM_EvaluatorThroughput);

}  // namespace
}  // namespace pipemap::bench

BENCHMARK_MAIN();
