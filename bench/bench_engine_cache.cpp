// Engine cache / warm-start harness (writes BENCH_engine_cache.json).
//
// Quantifies the two reuse layers the MappingEngine adds on top of the
// mappers, on the Table-2 applications:
//
//   1. Warm-started frontier sweeps: MappingEngine::Frontier threads one
//      WarmStartState through every DP solve of a latency/throughput
//      sweep, so range tables built for the first floor are reused by
//      later floors. The bench times the identical sweep cold (each solve
//      builds its own tables) and warm, verifies the frontiers match
//      point for point, and records the speedup. A repeated identical
//      sweep is answered whole from the engine's sweep cache with zero
//      DP solves, which is where the decisive speedup comes from.
//
//   2. Warm-started machine sizing: MinProcs binary-searches processor
//      budgets below P, and tables built at cap P answer every smaller
//      cap (the prefix property), so only the first probe tabulates.
//
//   3. The solution cache: repeating an identical MapRequest is answered
//      from the sharded LRU without running any solver. The bench times
//      the cold solve vs the cache hit and checks the mappings are
//      byte-identical (same serialized form).
//
//   4. The persistent tier: a writer engine with a cache directory spills
//      its solve to disk; a fresh engine on the same directory answers
//      the identical request first from disk (lazily rehydrating its
//      LRU), then from memory. The bench records cold vs. disk-warm vs.
//      memory-warm times and checks all three mappings are
//      byte-identical (tools/check_cache_persist.py gates the ratios).
//
// Exit status is nonzero when warm and cold disagree — never on small
// speedups, which are host-dependent; the JSON records the wall times so
// the trajectory is tracked PR over PR.
//
// Usage: bench_engine_cache [output.json] [points] [reps]
//        defaults: BENCH_engine_cache.json 6 3
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/latency_mapper.h"
#include "engine/mapping_engine.h"
#include "io/serialize.h"
#include "machine/feasible.h"
#include "support/json_writer.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FrontierSample {
  double cold_s = 0.0;
  double warm_s = 0.0;
  double cached_s = 0.0;
  std::uint64_t solves = 0;
  std::uint64_t tables_built = 0;
  std::uint64_t tables_reused = 0;
  bool identical = true;
};

struct SizingSample {
  double cold_s = 0.0;
  double warm_s = 0.0;
  double cached_s = 0.0;
  std::uint64_t solves = 0;
  std::uint64_t tables_reused = 0;
  bool identical = true;
};

struct CacheSample {
  double miss_s = 0.0;
  double hit_s = 0.0;
  bool byte_identical = true;
};

struct PersistSample {
  double cold_s = 0.0;
  double disk_hit_s = 0.0;
  double mem_hit_s = 0.0;
  bool byte_identical = true;
};

struct AppSample {
  std::string label;
  std::string size;
  std::string comm;
  FrontierSample frontier;
  SizingSample sizing;
  CacheSample cache;
  PersistSample persist;
};

bool SameFrontier(const std::vector<FrontierPoint>& a,
                  const std::vector<FrontierPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].mapping == b[i].mapping) ||
        a[i].throughput != b[i].throughput || a[i].latency != b[i].latency) {
      return false;
    }
  }
  return true;
}

int Run(const std::string& out_path, int points, int reps) {
  std::printf("Engine cache and warm-start reuse (Table-2 applications,"
              " %d-point frontiers, best of %d)\n\n",
              points, reps);

  MappingEngine engine;
  // Scratch directory for the persistent-tier measurements; wiped up
  // front so stale entries from an earlier run cannot fake a disk hit.
  const std::string persist_dir = out_path + ".cachedir";
  std::filesystem::remove_all(persist_dir);
  std::vector<AppSample> apps;
  bool all_identical = true;
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    AppSample app;
    app.label = c.label;
    app.size = c.size;
    app.comm = ToString(c.workload.machine.comm_mode);

    // Warm-started sweep through the engine vs. the same sweep with every
    // solve building its own range tables. Both sides construct their own
    // evaluator so the comparison isolates the table reuse.
    MapRequest request;
    request.chain = &c.workload.chain;
    request.machine = c.workload.machine;
    request.use_cache = false;  // measure the warm solves, not the cache
    std::vector<FrontierPoint> cold_frontier, warm_frontier;
    app.frontier.cold_s = std::numeric_limits<double>::infinity();
    app.frontier.warm_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const double start = Now();
      const Evaluator eval(c.workload.chain, P,
                           c.workload.machine.node_memory_bytes);
      MapperOptions options;
      options.proc_feasible =
          FeasibilityChecker(c.workload.machine).ProcCountPredicate();
      cold_frontier = LatencyThroughputFrontier(eval, P, points, options);
      app.frontier.cold_s = std::min(app.frontier.cold_s, Now() - start);
    }
    for (int rep = 0; rep < reps; ++rep) {
      SweepStats stats;
      const double start = Now();
      warm_frontier = engine.Frontier(request, points, &stats);
      app.frontier.warm_s = std::min(app.frontier.warm_s, Now() - start);
      app.frontier.solves = stats.solves;
      app.frontier.tables_built = stats.warm_tables_built;
      app.frontier.tables_reused = stats.warm_tables_reused;
    }
    app.frontier.identical = SameFrontier(cold_frontier, warm_frontier);
    all_identical = all_identical && app.frontier.identical;

    // Repeat sweep through the sweep cache: the first call fills it, the
    // repeats are answered whole.
    request.use_cache = true;
    engine.Frontier(request, points);
    app.frontier.cached_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const double start = Now();
      const std::vector<FrontierPoint> cached =
          engine.Frontier(request, points);
      app.frontier.cached_s = std::min(app.frontier.cached_s, Now() - start);
      app.frontier.identical =
          app.frontier.identical && SameFrontier(cold_frontier, cached);
    }
    all_identical = all_identical && app.frontier.identical;

    // Machine sizing: the binary search probes many processor budgets
    // below P, and range tables built at cap P answer every smaller cap
    // (the prefix property), so the warm-started search re-tabulates
    // nothing after the first solve. This is the sweep shape where table
    // reuse dominates.
    request.solver = SolverPolicy::kDp;
    request.use_cache = false;  // keep the cache cold for the miss timing
    const double peak = engine.Map(request).throughput;
    const double target = 0.5 * peak;
    ProcCountResult cold_size, warm_size;
    app.sizing.cold_s = std::numeric_limits<double>::infinity();
    app.sizing.warm_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const double start = Now();
      const Evaluator eval(c.workload.chain, P,
                           c.workload.machine.node_memory_bytes);
      MapperOptions options;
      options.proc_feasible =
          FeasibilityChecker(c.workload.machine).ProcCountPredicate();
      cold_size = MinProcessorsForThroughput(eval, P, target, options);
      app.sizing.cold_s = std::min(app.sizing.cold_s, Now() - start);
    }
    for (int rep = 0; rep < reps; ++rep) {
      SweepStats stats;
      const double start = Now();
      warm_size = engine.MinProcs(request, target, &stats);
      app.sizing.warm_s = std::min(app.sizing.warm_s, Now() - start);
      app.sizing.solves = stats.solves;
      app.sizing.tables_reused = stats.warm_tables_reused;
    }
    app.sizing.identical = cold_size.procs == warm_size.procs &&
                           cold_size.mapping == warm_size.mapping;
    all_identical = all_identical && app.sizing.identical;

    // Repeat sizing through the sweep cache.
    request.use_cache = true;
    engine.MinProcs(request, target);
    app.sizing.cached_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const double start = Now();
      const ProcCountResult cached = engine.MinProcs(request, target);
      app.sizing.cached_s = std::min(app.sizing.cached_s, Now() - start);
      app.sizing.identical = app.sizing.identical &&
                             cached.procs == cold_size.procs &&
                             cached.mapping == cold_size.mapping;
    }
    all_identical = all_identical && app.sizing.identical;

    // Solution cache: identical request answered without solving.
    request.use_cache = true;
    const double miss_start = Now();
    const MapResponse cold = engine.Map(request);
    app.cache.miss_s = Now() - miss_start;
    app.cache.hit_s = std::numeric_limits<double>::infinity();
    std::string hit_text;
    for (int rep = 0; rep < reps; ++rep) {
      const double start = Now();
      const MapResponse hit = engine.Map(request);
      app.cache.hit_s = std::min(app.cache.hit_s, Now() - start);
      app.cache.byte_identical =
          app.cache.byte_identical && hit.cache_hit &&
          SerializeMapping(hit.mapping) == SerializeMapping(cold.mapping);
    }
    all_identical = all_identical && app.cache.byte_identical;

    // Persistent tier: a writer engine spills the solve, then fresh
    // reader engines on the same directory serve it — the first Map from
    // disk (rehydrating the reader's LRU), the second from memory.
    {
      EngineConfig persist_config;
      persist_config.cache_dir = persist_dir;
      MappingEngine writer(persist_config);
      const double cold_start = Now();
      const MapResponse persisted = writer.Map(request);
      app.persist.cold_s = Now() - cold_start;
      writer.cache().FlushPersistence();
      const std::string cold_text = SerializeMapping(persisted.mapping);

      app.persist.disk_hit_s = std::numeric_limits<double>::infinity();
      app.persist.mem_hit_s = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < reps; ++rep) {
        MappingEngine reader(persist_config);
        double start = Now();
        const MapResponse disk_hit = reader.Map(request);
        app.persist.disk_hit_s =
            std::min(app.persist.disk_hit_s, Now() - start);
        app.persist.byte_identical =
            app.persist.byte_identical && disk_hit.cache_hit &&
            disk_hit.cache_tier == "disk" &&
            SerializeMapping(disk_hit.mapping) == cold_text;
        start = Now();
        const MapResponse mem_hit = reader.Map(request);
        app.persist.mem_hit_s = std::min(app.persist.mem_hit_s, Now() - start);
        app.persist.byte_identical =
            app.persist.byte_identical && mem_hit.cache_hit &&
            mem_hit.cache_tier == "memory" &&
            SerializeMapping(mem_hit.mapping) == cold_text;
      }
    }
    all_identical = all_identical && app.persist.byte_identical;

    std::printf("%-10s %-9s %-9s frontier %8.2f ms cold (warm %4.2fx,"
                " %llu/%llu reused, repeat %7.1fx)  sizing %8.2f ms cold"
                " (warm %4.2fx, repeat %7.1fx)  map hit %5.2fx%s%s%s\n",
                app.label.c_str(), app.size.c_str(), app.comm.c_str(),
                1e3 * app.frontier.cold_s,
                app.frontier.cold_s / app.frontier.warm_s,
                static_cast<unsigned long long>(app.frontier.tables_reused),
                static_cast<unsigned long long>(app.frontier.solves),
                app.frontier.cold_s / app.frontier.cached_s,
                1e3 * app.sizing.cold_s,
                app.sizing.cold_s / app.sizing.warm_s,
                app.sizing.cold_s / app.sizing.cached_s,
                app.cache.miss_s / app.cache.hit_s,
                app.frontier.identical ? "" : "  FRONTIER MISMATCH",
                app.sizing.identical ? "" : "  SIZING MISMATCH",
                app.cache.byte_identical ? "" : "  CACHE MISMATCH");
    std::printf("%-31s persist %8.2f ms cold (disk hit %6.1fx, mem hit"
                " %6.1fx)%s\n",
                "", 1e3 * app.persist.cold_s,
                app.persist.cold_s / app.persist.disk_hit_s,
                app.persist.cold_s / app.persist.mem_hit_s,
                app.persist.byte_identical ? "" : "  PERSIST MISMATCH");
    apps.push_back(std::move(app));
  }

  const SolutionCacheStats cache_stats = engine.cache().stats();
  std::printf("\ncache: %llu hits, %llu misses, %llu entries\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.entries));
  std::printf("warm == cold everywhere: %s\n",
              all_identical ? "yes" : "NO — reuse changed a result");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("bench_engine_cache");
  w.Key("frontier_points").Int(points);
  w.Key("reps").Int(reps);
  w.Key("all_identical").Bool(all_identical);
  w.Key("applications").BeginArray();
  for (const AppSample& app : apps) {
    w.BeginObject();
    w.Key("program").String(app.label);
    w.Key("size").String(app.size);
    w.Key("comm").String(app.comm);
    w.Key("frontier").BeginObject();
    w.Key("cold_s").Double(app.frontier.cold_s);
    w.Key("warm_s").Double(app.frontier.warm_s);
    w.Key("speedup").Double(app.frontier.cold_s / app.frontier.warm_s);
    w.Key("cached_s").Double(app.frontier.cached_s);
    w.Key("cached_speedup")
        .Double(app.frontier.cold_s / app.frontier.cached_s);
    w.Key("solves").UInt(app.frontier.solves);
    w.Key("tables_built").UInt(app.frontier.tables_built);
    w.Key("tables_reused").UInt(app.frontier.tables_reused);
    w.Key("identical").Bool(app.frontier.identical);
    w.EndObject();
    w.Key("sizing").BeginObject();
    w.Key("cold_s").Double(app.sizing.cold_s);
    w.Key("warm_s").Double(app.sizing.warm_s);
    w.Key("speedup").Double(app.sizing.cold_s / app.sizing.warm_s);
    w.Key("cached_s").Double(app.sizing.cached_s);
    w.Key("cached_speedup").Double(app.sizing.cold_s / app.sizing.cached_s);
    w.Key("solves").UInt(app.sizing.solves);
    w.Key("tables_reused").UInt(app.sizing.tables_reused);
    w.Key("identical").Bool(app.sizing.identical);
    w.EndObject();
    w.Key("cache").BeginObject();
    w.Key("miss_s").Double(app.cache.miss_s);
    w.Key("hit_s").Double(app.cache.hit_s);
    w.Key("speedup").Double(app.cache.miss_s / app.cache.hit_s);
    w.Key("byte_identical").Bool(app.cache.byte_identical);
    w.EndObject();
    w.Key("persist").BeginObject();
    w.Key("cold_s").Double(app.persist.cold_s);
    w.Key("disk_hit_s").Double(app.persist.disk_hit_s);
    w.Key("mem_hit_s").Double(app.persist.mem_hit_s);
    w.Key("disk_speedup").Double(app.persist.cold_s / app.persist.disk_hit_s);
    w.Key("mem_speedup").Double(app.persist.cold_s / app.persist.mem_hit_s);
    w.Key("byte_identical").Bool(app.persist.byte_identical);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("cache_stats").BeginObject();
  w.Key("hits").UInt(cache_stats.hits);
  w.Key("misses").UInt(cache_stats.misses);
  w.Key("inserts").UInt(cache_stats.inserts);
  w.Key("evictions").UInt(cache_stats.evictions);
  w.Key("entries").UInt(cache_stats.entries);
  w.EndObject();
  w.EndObject();
  out << w.str();
  std::filesystem::remove_all(persist_dir);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_engine_cache.json";
  const int points = argc > 2 ? std::atoi(argv[2]) : 6;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;
  return pipemap::bench::Run(out, points, reps);
}
