// Server throughput harness (writes BENCH_server_throughput.json).
//
// Runs an in-process PipemapServer on an ephemeral loopback port and
// drives it over real sockets across a concurrency ladder: for each
// client count, every client issues `map` requests drawn from a skewed
// problem mix (one hot problem most of the time, a tail of cold
// variants), the shape a mapping service sees in production. Recorded
// per rung:
//
//   * requests/s and p50/p95/p99 client-observed latency;
//   * the shared solution cache's hit ratio under the skewed mix (the
//     whole point of one process-wide engine: concurrent connections
//     feed each other's cache);
//   * malformed-response and error counts — the bench double-checks the
//     server's core output contract (every response parses as strict
//     JSON) while measuring it.
//
// Exit status is nonzero when any response is malformed or any request
// fails — never on throughput numbers, which are host-dependent; the
// JSON records them so the trajectory is tracked PR over PR.
//
// Usage: bench_server_throughput [output.json] [requests_per_client]
//        defaults: BENCH_server_throughput.json 24
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/mapping_engine.h"
#include "io/serialize.h"
#include "server/client.h"
#include "server/server.h"
#include "support/json_verify.h"
#include "support/json_writer.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kSkew = 0.8;  // probability of the hot problem
constexpr int kVariants = 4;

struct RungResult {
  int clients = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t malformed = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0.0;
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_ratio = 0.0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo);
}

struct ProblemMix {
  std::vector<std::string> chains;
  std::vector<std::string> machines;
};

ProblemMix MakeMix() {
  ProblemMix mix;
  for (int v = 0; v < kVariants; ++v) {
    workloads::SyntheticSpec spec;
    spec.num_tasks = 4 + (v % 3);
    spec.machine_procs = 16;
    spec.mean_work_s = 0.05 * (1 + v);
    const Workload workload =
        workloads::MakeSynthetic(spec, static_cast<std::uint64_t>(v + 1));
    mix.chains.push_back(
        SerializeChain(workload.chain, workload.machine.total_procs()));
    mix.machines.push_back(SerializeMachine(workload.machine));
  }
  return mix;
}

RungResult RunRung(int clients, int requests_per_client, int port,
                   const ProblemMix& mix, MappingEngine& engine) {
  const SolutionCacheStats before = engine.cache().stats();
  RungResult rung;
  rung.clients = clients;

  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> errors{0};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(c) * 7919u + 1);
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      std::uniform_int_distribution<int> tail(1, kVariants - 1);
      try {
        server::ServerClient client("127.0.0.1", port);
        for (int i = 0; i < requests_per_client; ++i) {
          const int variant = uniform(rng) < kSkew ? 0 : tail(rng);
          server::ServerRequest request;
          request.op = "map";
          request.algorithm = "auto";
          request.chain_text = mix.chains[variant];
          request.machine_text = mix.machines[variant];
          request.has_chain = true;
          request.has_machine = true;
          const Clock::time_point t0 = Clock::now();
          const std::string response = client.Call(request);
          latencies[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double>(Clock::now() - t0).count());
          if (!IsValidJson(response)) {
            malformed.fetch_add(1);
          } else if (response.find("\"ok\": true") != std::string::npos) {
            ok.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  rung.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  rung.completed = static_cast<std::uint64_t>(all.size());
  rung.ok = ok.load();
  rung.malformed = malformed.load();
  rung.errors = errors.load();
  rung.requests_per_s =
      rung.elapsed_s > 0.0
          ? static_cast<double>(rung.completed) / rung.elapsed_s
          : 0.0;
  rung.p50_ms = Percentile(all, 0.50) * 1e3;
  rung.p95_ms = Percentile(all, 0.95) * 1e3;
  rung.p99_ms = Percentile(all, 0.99) * 1e3;

  const SolutionCacheStats after = engine.cache().stats();
  const std::uint64_t hits = after.hits - before.hits;
  const std::uint64_t misses = after.misses - before.misses;
  rung.cache_hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  return rung;
}

int Run(const std::string& out_path, int requests_per_client) {
  const ProblemMix mix = MakeMix();

  MappingEngine engine;
  server::ServerConfig config;
  config.engine = &engine;
  config.num_workers = 4;
  config.queue_capacity = 256;
  server::PipemapServer server(config);
  server.Start();
  std::printf("bench_server_throughput: server on port %d, %d requests per"
              " client, skew %.2f\n",
              server.port(), requests_per_client, kSkew);

  const std::vector<int> ladder = {1, 4, 16, 64};
  std::vector<RungResult> rungs;
  bool contract_violated = false;
  for (const int clients : ladder) {
    const RungResult rung = RunRung(clients, requests_per_client,
                                    server.port(), mix, engine);
    std::printf("  clients %2d: %8.1f req/s  p50 %7.3f ms  p95 %7.3f ms"
                "  p99 %7.3f ms  cache %4.2f  malformed %llu\n",
                rung.clients, rung.requests_per_s, rung.p50_ms, rung.p95_ms,
                rung.p99_ms, rung.cache_hit_ratio,
                static_cast<unsigned long long>(rung.malformed));
    if (rung.malformed > 0 || rung.errors > 0 ||
        rung.completed != static_cast<std::uint64_t>(clients) *
                              static_cast<std::uint64_t>(
                                  requests_per_client)) {
      contract_violated = true;
    }
    rungs.push_back(rung);
  }
  server.Drain();
  const server::ServerCounters counters = server.counters();

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("server_throughput");
  w.Key("requests_per_client").Int(requests_per_client);
  w.Key("skew").Double(kSkew);
  w.Key("variants").Int(kVariants);
  w.Key("workers").Int(config.num_workers);
  w.Key("rungs").BeginArray();
  for (const RungResult& rung : rungs) {
    w.BeginObject();
    w.Key("clients").Int(rung.clients);
    w.Key("completed").UInt(rung.completed);
    w.Key("ok").UInt(rung.ok);
    w.Key("malformed").UInt(rung.malformed);
    w.Key("errors").UInt(rung.errors);
    w.Key("elapsed_s").Double(rung.elapsed_s);
    w.Key("requests_per_s").Double(rung.requests_per_s);
    w.Key("p50_ms").Double(rung.p50_ms);
    w.Key("p95_ms").Double(rung.p95_ms);
    w.Key("p99_ms").Double(rung.p99_ms);
    w.Key("cache_hit_ratio").Double(rung.cache_hit_ratio);
    w.EndObject();
  }
  w.EndArray();
  w.Key("server").BeginObject();
  w.Key("connections").UInt(counters.connections);
  w.Key("accepted").UInt(counters.accepted);
  w.Key("rejected").UInt(counters.rejected);
  w.Key("completed").UInt(counters.completed);
  w.Key("parse_errors").UInt(counters.parse_errors);
  w.EndObject();
  w.Key("contract_violated").Bool(contract_violated);
  w.EndObject();

  std::ofstream out(out_path);
  out << w.str();
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (contract_violated) {
    std::fprintf(stderr, "bench_server_throughput: CONTRACT VIOLATED —"
                 " malformed or missing responses\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_server_throughput.json";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 24;
  return pipemap::bench::Run(out_path, requests > 0 ? requests : 24);
}
