// Reproduces the Section 6.3 model-accuracy claim: "We checked the accuracy
// of the model by comparing the predicted and actual communication and
// computation times for a set of mappings and the difference averaged less
// than 10%."
//
// For each workload: fit the Section-5 model from 8 training runs, then
// (1) compare the fitted cost functions against ground truth over the
// processor range, and (2) compare predicted vs simulated throughput over a
// set of probe mappings none of which were in the training set.
//
// Besides the text table, the run writes a machine-readable JSON file
// (default BENCH_model_accuracy.json) with the per-application
// predicted-vs-simulated divergence of every probe mapping, so the model's
// accuracy trajectory is tracked PR over PR alongside the perf benches.
//
// Usage: bench_model_accuracy [output.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/baseline.h"
#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/greedy_mapper.h"
#include "profiling/profiler.h"
#include "support/json_writer.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

struct ProbeRecord {
  std::string name;
  std::string mapping;
  double predicted = 0.0;
  double measured = 0.0;
  double error = 0.0;  // |measured - predicted| / measured
};

struct AppRecord {
  std::string label;
  std::string size;
  std::string comm;
  double fn_mean_err = 0.0;
  double fn_max_err = 0.0;
  double probe_mean_err = 0.0;
  double probe_max_err = 0.0;
  std::vector<ProbeRecord> probes;
};

int Run(const std::string& out_path) {
  std::printf("Section 6.3: accuracy of the profile-fitted cost model\n\n");

  TextTable table({"Program", "Size", "Comm", "Fn mean err %", "Fn max err %",
                   "Probe mean err %", "Probe max err %"});
  std::vector<AppRecord> apps;
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const double node_mem = c.workload.machine.node_memory_bytes;
    Profiler profiler(c.workload.chain, P, node_mem);
    ProfilerOptions poptions;
    poptions.sim.noise.systematic_stddev = 0.03;
    poptions.sim.noise.jitter_stddev = 0.01;
    const FittedModel model = profiler.Fit(poptions);
    const FitQuality fn_quality =
        CompareChainModels(c.workload.chain, model.chain, P);

    // Probe mappings: DP optimum, greedy, data parallel, task parallel.
    const Evaluator fitted_eval(model.chain, P, node_mem);
    std::vector<std::pair<const char*, Mapping>> probes;
    probes.emplace_back("dp", DpMapper().Map(fitted_eval, P).mapping);
    probes.emplace_back("greedy", GreedyMapper().Map(fitted_eval, P).mapping);
    probes.emplace_back("data_parallel",
                        DataParallelMapping(fitted_eval, P).mapping);
    probes.emplace_back("task_parallel",
                        TaskParallelMapping(fitted_eval, P).mapping);

    PipelineSimulator sim(c.workload.chain);
    SimOptions soptions;
    soptions.num_datasets = 400;
    soptions.warmup = 150;
    soptions.noise.systematic_stddev = 0.03;
    soptions.noise.jitter_stddev = 0.01;

    AppRecord app;
    app.label = c.label;
    app.size = c.size;
    app.comm = ToString(c.workload.machine.comm_mode);
    app.fn_mean_err = fn_quality.mean_relative_error;
    app.fn_max_err = fn_quality.max_relative_error;
    double sum = 0.0, worst = 0.0;
    for (const auto& [name, probe] : probes) {
      ProbeRecord rec;
      rec.name = name;
      rec.mapping = probe.ToString(c.workload.chain);
      rec.predicted = fitted_eval.Throughput(probe);
      rec.measured = sim.Run(probe, soptions).throughput;
      rec.error = std::abs(rec.measured - rec.predicted) / rec.measured;
      sum += rec.error;
      worst = std::max(worst, rec.error);
      app.probes.push_back(std::move(rec));
    }
    app.probe_mean_err = sum / probes.size();
    app.probe_max_err = worst;
    table.AddRow({c.label, c.size, app.comm,
                  TextTable::Num(100 * app.fn_mean_err, 1),
                  TextTable::Num(100 * app.fn_max_err, 1),
                  TextTable::Num(100 * app.probe_mean_err, 1),
                  TextTable::Num(100 * app.probe_max_err, 1)});
    apps.push_back(std::move(app));
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: probe-mapping throughput prediction error averages\n"
      "around 10%% or less (the paper's figure); pointwise cost-function\n"
      "error is larger at extrapolated corners, as expected from an\n"
      "8-run training budget.\n");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("bench_model_accuracy");
  w.Key("applications").BeginArray();
  for (const AppRecord& app : apps) {
    w.BeginObject();
    w.Key("program").String(app.label);
    w.Key("size").String(app.size);
    w.Key("comm").String(app.comm);
    w.Key("fn_mean_err").Double(app.fn_mean_err);
    w.Key("fn_max_err").Double(app.fn_max_err);
    w.Key("probe_mean_err").Double(app.probe_mean_err);
    w.Key("probe_max_err").Double(app.probe_max_err);
    w.Key("probes").BeginArray();
    for (const ProbeRecord& rec : app.probes) {
      w.BeginObject();
      w.Key("name").String(rec.name);
      w.Key("mapping").String(rec.mapping);
      w.Key("predicted_throughput").Double(rec.predicted);
      w.Key("simulated_throughput").Double(rec.measured);
      w.Key("divergence").Double(rec.error);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << w.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1] : "BENCH_model_accuracy.json";
  return pipemap::bench::Run(out);
}
