// Reproduces the Section 6.3 model-accuracy claim: "We checked the accuracy
// of the model by comparing the predicted and actual communication and
// computation times for a set of mappings and the difference averaged less
// than 10%."
//
// For each workload: fit the Section-5 model from 8 training runs, then
// (1) compare the fitted cost functions against ground truth over the
// processor range, and (2) compare predicted vs simulated throughput over a
// set of probe mappings none of which were in the training set.
#include <cstdio>

#include "core/baseline.h"
#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/greedy_mapper.h"
#include "profiling/profiler.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Section 6.3: accuracy of the profile-fitted cost model\n\n");

  TextTable table({"Program", "Size", "Comm", "Fn mean err %", "Fn max err %",
                   "Probe mean err %", "Probe max err %"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const double node_mem = c.workload.machine.node_memory_bytes;
    Profiler profiler(c.workload.chain, P, node_mem);
    ProfilerOptions poptions;
    poptions.sim.noise.systematic_stddev = 0.03;
    poptions.sim.noise.jitter_stddev = 0.01;
    const FittedModel model = profiler.Fit(poptions);
    const FitQuality fn_quality =
        CompareChainModels(c.workload.chain, model.chain, P);

    // Probe mappings: DP optimum, greedy, data parallel, task parallel.
    const Evaluator fitted_eval(model.chain, P, node_mem);
    std::vector<Mapping> probes;
    probes.push_back(DpMapper().Map(fitted_eval, P).mapping);
    probes.push_back(GreedyMapper().Map(fitted_eval, P).mapping);
    probes.push_back(DataParallelMapping(fitted_eval, P).mapping);
    probes.push_back(TaskParallelMapping(fitted_eval, P).mapping);

    PipelineSimulator sim(c.workload.chain);
    SimOptions soptions;
    soptions.num_datasets = 400;
    soptions.warmup = 150;
    soptions.noise.systematic_stddev = 0.03;
    soptions.noise.jitter_stddev = 0.01;
    double sum = 0.0, worst = 0.0;
    for (const Mapping& probe : probes) {
      const double predicted = fitted_eval.Throughput(probe);
      const double measured = sim.Run(probe, soptions).throughput;
      const double err = std::abs(measured - predicted) / measured;
      sum += err;
      worst = std::max(worst, err);
    }
    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(100 * fn_quality.mean_relative_error, 1),
                  TextTable::Num(100 * fn_quality.max_relative_error, 1),
                  TextTable::Num(100 * sum / probes.size(), 1),
                  TextTable::Num(100 * worst, 1)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: probe-mapping throughput prediction error averages\n"
      "around 10%% or less (the paper's figure); pointwise cost-function\n"
      "error is larger at extrapolated corners, as expected from an\n"
      "8-run training budget.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
