// Ablation: the paper's maximal-replication rule (Section 3.2) against
// (a) no replication at all and (b) a per-budget search over the replica
// count. Under the paper's non-superlinearity assumption maximal
// replication is provably as good as search; this bench verifies that and
// quantifies how much replication itself is worth.
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "support/table.h"
#include "workloads/synthetic.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

double MapWith(const Evaluator& eval, int procs, ReplicationPolicy policy) {
  MapperOptions options;
  options.replication = policy;
  return DpMapper(options).Map(eval, procs).throughput;
}

int Run() {
  std::printf("Ablation: replication policy (DP mapper)\n\n");
  TextTable table({"Program", "Size", "Comm", "None", "Maximal", "Search",
                   "Maximal/None", "Search/Maximal"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const Evaluator eval(c.workload.chain, P,
                         c.workload.machine.node_memory_bytes);
    const double none = MapWith(eval, P, ReplicationPolicy::kNone);
    const double maximal = MapWith(eval, P, ReplicationPolicy::kMaximal);
    const double search = MapWith(eval, P, ReplicationPolicy::kSearch);
    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(none, 2), TextTable::Num(maximal, 2),
                  TextTable::Num(search, 2),
                  TextTable::Num(maximal / none, 2),
                  TextTable::Num(search / maximal, 3)});
  }
  std::fputs(table.Render().c_str(), stdout);

  std::printf("\nSynthetic sweep (30 chains, P=32):\n");
  double max_gain = 0.0;
  double repl_gain_sum = 0.0;
  for (int seed = 0; seed < 30; ++seed) {
    workloads::SyntheticSpec spec;
    spec.num_tasks = 3 + seed % 3;
    spec.machine_procs = 32;
    spec.memory_tightness = 0.3;
    const Workload w = workloads::MakeSynthetic(spec, 8000 + seed);
    const Evaluator eval(w.chain, 32, w.machine.node_memory_bytes);
    const double none = MapWith(eval, 32, ReplicationPolicy::kNone);
    const double maximal = MapWith(eval, 32, ReplicationPolicy::kMaximal);
    const double search = MapWith(eval, 32, ReplicationPolicy::kSearch);
    repl_gain_sum += maximal / none;
    max_gain = std::max(max_gain, search / maximal - 1.0);
  }
  std::printf("  mean maximal/none throughput gain: %.2fx\n",
              repl_gain_sum / 30);
  std::printf("  max search-over-maximal improvement: %.2f%%\n",
              100.0 * max_gain);
  std::printf(
      "\nShape check: replication is a large win (the paper's Figure 3\n"
      "argument); searching the replica count almost never beats the\n"
      "maximal rule, validating the Section 3.2 assumption.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
