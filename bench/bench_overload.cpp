// Overload-resilience harness (writes BENCH_overload.json).
//
// Drives an in-process PipemapServer through an offered-load ladder that
// deliberately runs past saturation (few workers, a small admission
// queue, cache-bypassing solves so every request costs a real solve) and
// measures what the overload layer buys:
//
//   * each rung runs twice — once against a server with adaptive
//     shedding armed (queue-depth watermark) and once against the same
//     server with `overload_enabled = false` (the pre-overload-layer
//     behavior: admit until the queue is full, then reject);
//   * recorded per rung and mode: goodput (ok responses / wall second),
//     shed and queue-full-reject rates, degraded share, and p50/p99 of
//     the *served* responses only — the claim under test is that
//     shedding holds served p99 down (admitted work waits behind a
//     watermark-bounded queue, not a full one) without giving up
//     goodput (workers never idle in either mode).
//
// A separate brownout probe then runs a short storm against a server
// with a deliberately unmeetable SLO (p99 objective far below any real
// solve) and brownout hysteresis armed, demonstrating the full
// degradation ladder: burn -> shed, burn sustained -> brownout, burn
// clears -> admitted solves served greedy-only and flagged
// `degraded: true` until the recovery streak completes.
//
// tools/check_overload.py gates the JSON (shed p99 bounded by the
// baseline's, goodput parity at the deepest rung, the probe actually
// degraded); exit status here is nonzero only on contract violations —
// malformed responses or transport failures against a healthy server.
//
// Usage: bench_overload [output.json] [rung_seconds]
//        defaults: BENCH_overload.json 1.5
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/mapping_engine.h"
#include "io/serialize.h"
#include "server/client.h"
#include "server/server.h"
#include "support/json_verify.h"
#include "support/json_writer.h"
#include "support/parse.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWorkers = 2;
// Deep enough that the watermark-bounded backlog (watermark * capacity
// solves) outlasts a refused client's backoff — shedding must bound
// latency without ever idling a worker.
constexpr std::size_t kQueueCapacity = 32;
constexpr int kVariants = 32;

struct ProblemMix {
  std::vector<std::string> chains;
  std::vector<std::string> machines;
};

/// Distinct problems, cycled per request with the cache bypassed, so
/// every admitted request costs a genuine portfolio solve.
ProblemMix MakeMix() {
  ProblemMix mix;
  for (int v = 0; v < kVariants; ++v) {
    workloads::SyntheticSpec spec;
    spec.num_tasks = 6 + (v % 4);
    spec.machine_procs = 32;
    spec.mean_work_s = 0.03 * (1 + v % 5);
    const Workload workload =
        workloads::MakeSynthetic(spec, static_cast<std::uint64_t>(v + 17));
    mix.chains.push_back(
        SerializeChain(workload.chain, workload.machine.total_procs()));
    mix.machines.push_back(SerializeMachine(workload.machine));
  }
  return mix;
}

struct RungMetrics {
  std::uint64_t offered = 0;    ///< requests sent
  std::uint64_t ok = 0;         ///< "ok": true responses
  std::uint64_t shed = 0;       ///< code "overloaded"
  std::uint64_t rejected = 0;   ///< code "rejected" (queue full)
  std::uint64_t degraded = 0;   ///< ok responses flagged degraded
  std::uint64_t other_errors = 0;
  std::uint64_t malformed = 0;
  std::uint64_t transport_errors = 0;
  double elapsed_s = 0.0;
  double goodput_rps = 0.0;  ///< ok / elapsed
  double p50_ms = 0.0;       ///< served (ok) responses only
  double p99_ms = 0.0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo);
}

/// `clients` closed-loop connections hammer the server for `seconds`.
RungMetrics RunRung(int clients, double seconds, int port,
                    const ProblemMix& mix) {
  RungMetrics rung;
  std::mutex mu;  // guards rung + the latency pool
  std::vector<double> ok_latencies;

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RungMetrics local;
      std::vector<double> latencies;
      int variant = c % kVariants;
      bool backed_off = false;
      try {
        server::ServerClient client("127.0.0.1", port);
        while (Clock::now() < stop) {
          server::ServerRequest request;
          request.op = "map";
          request.algorithm = "auto";
          request.use_cache = false;  // every admitted request solves
          request.chain_text = mix.chains[variant];
          request.machine_text = mix.machines[variant];
          request.has_chain = true;
          request.has_machine = true;
          variant = (variant + 1) % kVariants;
          ++local.offered;
          const Clock::time_point t0 = Clock::now();
          const std::string response = client.Call(request);
          const double latency_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          if (!IsValidJson(response)) {
            ++local.malformed;
          } else if (response.find("\"ok\": true") != std::string::npos) {
            ++local.ok;
            latencies.push_back(latency_s);
            if (response.find("\"degraded\": true") != std::string::npos) {
              ++local.degraded;
            }
          } else if (response.find("\"code\": \"overloaded\"") !=
                     std::string::npos) {
            ++local.shed;
            backed_off = true;
          } else if (response.find("\"code\": \"rejected\"") !=
                     std::string::npos) {
            ++local.rejected;
            backed_off = true;
          } else {
            ++local.other_errors;
          }
          if (backed_off) {
            // A compliant client backs off after a refusal (the shed
            // response even tells it to). A fixed small backoff — the
            // same in both modes — keeps the comparison about admission
            // policy, not about refused clients busy-spinning the
            // connection threads into the workers' CPU time.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(8 + (c % 8)));
            backed_off = false;
          }
        }
      } catch (const std::exception&) {
        ++local.transport_errors;
      }
      std::lock_guard<std::mutex> lock(mu);
      rung.offered += local.offered;
      rung.ok += local.ok;
      rung.shed += local.shed;
      rung.rejected += local.rejected;
      rung.degraded += local.degraded;
      rung.other_errors += local.other_errors;
      rung.malformed += local.malformed;
      rung.transport_errors += local.transport_errors;
      ok_latencies.insert(ok_latencies.end(), latencies.begin(),
                          latencies.end());
    });
  }
  for (std::thread& t : threads) t.join();
  rung.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  rung.goodput_rps = rung.elapsed_s > 0.0
                         ? static_cast<double>(rung.ok) / rung.elapsed_s
                         : 0.0;
  std::sort(ok_latencies.begin(), ok_latencies.end());
  rung.p50_ms = Percentile(ok_latencies, 0.50) * 1e3;
  rung.p99_ms = Percentile(ok_latencies, 0.99) * 1e3;
  return rung;
}

void WriteMetrics(JsonWriter& w, const RungMetrics& m) {
  w.BeginObject();
  w.Key("offered").UInt(m.offered);
  w.Key("ok").UInt(m.ok);
  w.Key("shed").UInt(m.shed);
  w.Key("rejected").UInt(m.rejected);
  w.Key("degraded").UInt(m.degraded);
  w.Key("other_errors").UInt(m.other_errors);
  w.Key("malformed").UInt(m.malformed);
  w.Key("transport_errors").UInt(m.transport_errors);
  w.Key("elapsed_s").Double(m.elapsed_s);
  w.Key("goodput_rps").Double(m.goodput_rps);
  w.Key("p50_ms").Double(m.p50_ms);
  w.Key("p99_ms").Double(m.p99_ms);
  w.EndObject();
}

bool ContractViolated(const RungMetrics& m) {
  return m.malformed > 0 || m.transport_errors > 0 || m.other_errors > 0;
}

server::ServerConfig BaseConfig(MappingEngine* engine) {
  server::ServerConfig config;
  config.engine = engine;
  config.num_workers = kWorkers;
  config.queue_capacity = kQueueCapacity;
  return config;
}

int Run(const std::string& out_path, double rung_seconds) {
  const ProblemMix mix = MakeMix();
  // The deepest rung offers twice the baseline queue's worth of
  // closed-loop clients, so BOTH modes are refusing work there (queue
  // full vs watermark) and the goodput comparison is symmetric — that is
  // the rung tools/check_overload.py gates.
  const std::vector<int> ladder = {4, 16, 64};
  bool contract_violated = false;

  // Shedding server: queue-depth watermark only (no SLO objectives), so
  // the ladder isolates what admission shedding does to served latency.
  MappingEngine shed_engine;
  server::ServerConfig shed_config = BaseConfig(&shed_engine);
  shed_config.shed_watermark = 0.5;
  server::PipemapServer shed_server(shed_config);
  shed_server.Start();

  // Baseline: the identical server with the overload layer off.
  MappingEngine base_engine;
  server::ServerConfig base_config = BaseConfig(&base_engine);
  base_config.overload_enabled = false;
  server::PipemapServer base_server(base_config);
  base_server.Start();

  std::printf("bench_overload: %d workers, queue %zu, %.1fs per rung\n",
              kWorkers, kQueueCapacity, rung_seconds);
  std::vector<std::pair<RungMetrics, RungMetrics>> rungs;  // shed, baseline
  for (const int clients : ladder) {
    const RungMetrics shed =
        RunRung(clients, rung_seconds, shed_server.port(), mix);
    const RungMetrics base =
        RunRung(clients, rung_seconds, base_server.port(), mix);
    contract_violated =
        contract_violated || ContractViolated(shed) || ContractViolated(base);
    std::printf(
        "  clients %2d: shed  %6.1f ok/s  p99 %8.2f ms  shed %5llu\n"
        "              plain %6.1f ok/s  p99 %8.2f ms  reject %5llu\n",
        clients, shed.goodput_rps, shed.p99_ms,
        static_cast<unsigned long long>(shed.shed), base.goodput_rps,
        base.p99_ms, static_cast<unsigned long long>(base.rejected));
    rungs.emplace_back(shed, base);
  }
  shed_server.Drain();
  base_server.Drain();

  // Brownout probe: an unmeetable p99 objective forces the burn signal;
  // sustained burn engages brownout; when shedding empties the SLO
  // window the burn clears and admitted solves are served degraded
  // (greedy-only, short deadline) until the recovery streak completes.
  MappingEngine probe_engine;
  server::ServerConfig probe_config = BaseConfig(&probe_engine);
  probe_config.shed_watermark = 0.5;
  probe_config.slo_p99_ms = 0.1;
  probe_config.slo_window_s = 1;
  probe_config.brownout_after_s = 0.2;
  probe_config.recover_after_s = 2.0;
  probe_config.degraded_deadline_s = 0.02;
  server::PipemapServer probe_server(probe_config);
  probe_server.Start();
  const RungMetrics probe = RunRung(8, 4.0, probe_server.port(), mix);
  contract_violated = contract_violated || ContractViolated(probe);
  const server::OverloadState probe_overload = probe_server.overload_state();
  probe_server.Drain();
  std::printf("  brownout probe: ok %llu  shed %llu  degraded %llu  "
              "entries %llu\n",
              static_cast<unsigned long long>(probe.ok),
              static_cast<unsigned long long>(probe.shed),
              static_cast<unsigned long long>(probe.degraded),
              static_cast<unsigned long long>(probe_overload.brownout_entries));

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("overload");
  w.Key("workers").Int(kWorkers);
  w.Key("queue_capacity").UInt(kQueueCapacity);
  w.Key("rung_seconds").Double(rung_seconds);
  w.Key("shed_watermark").Double(shed_config.shed_watermark);
  w.Key("ladder").BeginArray();
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    w.BeginObject();
    w.Key("clients").Int(ladder[i]);
    w.Key("shedding");
    WriteMetrics(w, rungs[i].first);
    w.Key("baseline");
    WriteMetrics(w, rungs[i].second);
    w.EndObject();
  }
  w.EndArray();
  w.Key("brownout_probe");
  WriteMetrics(w, probe);
  w.Key("brownout_entries").UInt(probe_overload.brownout_entries);
  w.Key("contract_violated").Bool(contract_violated);
  w.EndObject();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::printf("bench_overload: wrote %s\n", out_path.c_str());
  return contract_violated ? 1 : 0;
}

}  // namespace
}  // namespace pipemap::bench

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  double rung_seconds = 1.5;
  if (argc > 2) {
    const std::optional<double> parsed = pipemap::TryParseDouble(argv[2]);
    if (!parsed || *parsed <= 0.0) {
      std::fprintf(stderr, "bench_overload: bad rung_seconds '%s'\n", argv[2]);
      return 2;
    }
    rung_seconds = *parsed;
  }
  return pipemap::bench::Run(out_path, rung_seconds);
}
