// Reproduces paper Figure 3 as a measurement: replication of a module.
// Dividing a module's processors into r instances that process alternate
// data sets raises throughput (more data sets in flight) while raising the
// response time per data set (each instance is narrower) — the
// latency/throughput trade-off replication buys.
#include <cstdio>

#include "core/evaluator.h"
#include "sim/pipeline_sim.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Figure 3: replication trade-off\n");
  std::printf("(FFT-Hist 256x256 whole chain as one module on 56\n");
  std::printf(" processors, split into r instances of 56/r processors)\n\n");

  const Workload w = workloads::MakeFftHist(256, CommMode::kMessage);
  const Evaluator eval(w.chain, 64, w.machine.node_memory_bytes);
  PipelineSimulator sim(w.chain);
  SimOptions options;
  options.num_datasets = 400;
  options.warmup = 150;

  TextTable table({"r", "p/instance", "Response f (pred)", "Eff f/r (pred)",
                   "Thr pred", "Thr sim", "Latency sim"});
  const int budget = 56;
  const int min_p = eval.MinProcs(0, 2);
  for (int r = 1; r <= 8; ++r) {
    const int p = budget / r;
    if (p < min_p) break;
    Mapping mapping;
    mapping.modules.push_back(ModuleAssignment{0, 2, r, p});
    const double f = eval.InstanceResponse(0, 2, p, 0, 0);
    const double predicted = eval.Throughput(mapping);
    const SimResult result = sim.Run(mapping, options);
    table.AddRow({TextTable::Num(r), TextTable::Num(p), TextTable::Num(f, 4),
                  TextTable::Num(f / r, 4), TextTable::Num(predicted, 2),
                  TextTable::Num(result.throughput, 2),
                  TextTable::Num(result.mean_latency, 4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: response time f grows with r (narrower instances)\n"
      "while throughput r/f grows — the paper's premise that maximal\n"
      "replication subject to memory is profitable when costs are not\n"
      "superlinear.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
