// Extension benchmark: the latency/throughput/processors trade-offs of the
// paper's companion work (Vondran [14], "Optimization of latency,
// throughput and processors for pipelines of data parallel tasks").
//
// For each application: the minimum-latency mapping, the
// maximum-throughput mapping, the Pareto frontier between them (verified in
// the simulator), and the machine size needed to hit fractions of peak
// throughput.
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/latency_mapper.h"
#include "sim/pipeline_sim.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Extension: latency/throughput/processors optimization\n\n");

  for (const char* which : {"fft", "radar"}) {
    const Workload w = which[0] == 'f'
                           ? workloads::MakeFftHist(256, CommMode::kMessage)
                           : workloads::MakeRadar(CommMode::kSystolic);
    const int P = w.machine.total_procs();
    const Evaluator eval(w.chain, P, w.machine.node_memory_bytes);
    PipelineSimulator sim(w.chain);
    SimOptions soptions;
    soptions.num_datasets = 400;
    soptions.warmup = 150;

    std::printf("-- %s --\n", w.name.c_str());
    TextTable table({"Design point", "Mapping", "Thr pred", "Lat pred (ms)",
                     "Thr sim", "Lat sim (ms)"});
    const auto frontier = LatencyThroughputFrontier(eval, P, 6);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const FrontierPoint& p = frontier[i];
      const SimResult r = sim.Run(p.mapping, soptions);
      std::string label = "frontier " + std::to_string(i + 1);
      if (i == 0) label += " (min latency)";
      if (i + 1 == frontier.size()) label += " (max throughput)";
      table.AddRow({label, p.mapping.ToString(w.chain),
                    TextTable::Num(p.throughput, 1),
                    TextTable::Num(1000 * p.latency, 2),
                    TextTable::Num(r.throughput, 1),
                    TextTable::Num(1000 * r.mean_latency, 2)});
    }
    std::fputs(table.Render().c_str(), stdout);

    TextTable sizing({"Target (ds/s)", "Min processors", "Achieved"});
    const MapResult peak = DpMapper().Map(eval, P);
    for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
      const double target = fraction * peak.throughput;
      const ProcCountResult r =
          MinProcessorsForThroughput(eval, P, target);
      sizing.AddRow({TextTable::Num(target, 1), TextTable::Num(r.procs),
                     TextTable::Num(r.throughput, 1)});
    }
    std::fputs(sizing.Render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: latency and throughput trade off monotonically along\n"
      "the frontier; hitting the last fraction of peak throughput costs a\n"
      "disproportionate share of the machine.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
