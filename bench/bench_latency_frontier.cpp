// Extension benchmark: the latency/throughput/processors trade-offs of the
// paper's companion work (Vondran [14], "Optimization of latency,
// throughput and processors for pipelines of data parallel tasks").
//
// For each application: the minimum-latency mapping, the
// maximum-throughput mapping, the Pareto frontier between them (verified in
// the simulator), and the machine size needed to hit fractions of peak
// throughput.
#include <cstdio>

#include "engine/mapping_engine.h"
#include "sim/pipeline_sim.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Extension: latency/throughput/processors optimization\n\n");

  for (const char* which : {"fft", "radar"}) {
    const Workload w = which[0] == 'f'
                           ? workloads::MakeFftHist(256, CommMode::kMessage)
                           : workloads::MakeRadar(CommMode::kSystolic);
    PipelineSimulator sim(w.chain);
    SimOptions soptions;
    soptions.num_datasets = 400;
    soptions.warmup = 150;

    MappingEngine& engine = MappingEngine::Shared();
    MapRequest request;
    request.chain = &w.chain;
    request.machine = w.machine;
    request.machine_feasibility = false;

    std::printf("-- %s --\n", w.name.c_str());
    TextTable table({"Design point", "Mapping", "Thr pred", "Lat pred (ms)",
                     "Thr sim", "Lat sim (ms)"});
    SweepStats stats;
    const auto frontier = engine.Frontier(request, 6, &stats);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const FrontierPoint& p = frontier[i];
      const SimResult r = sim.Run(p.mapping, soptions);
      std::string label = "frontier " + std::to_string(i + 1);
      if (i == 0) label += " (min latency)";
      if (i + 1 == frontier.size()) label += " (max throughput)";
      table.AddRow({label, p.mapping.ToString(w.chain),
                    TextTable::Num(p.throughput, 1),
                    TextTable::Num(1000 * p.latency, 2),
                    TextTable::Num(r.throughput, 1),
                    TextTable::Num(1000 * r.mean_latency, 2)});
    }
    std::fputs(table.Render().c_str(), stdout);
    std::printf("frontier warm start: %llu of %llu DP solves reused range"
                " tables\n",
                static_cast<unsigned long long>(stats.warm_tables_reused),
                static_cast<unsigned long long>(stats.solves));

    TextTable sizing({"Target (ds/s)", "Min processors", "Achieved"});
    request.solver = SolverPolicy::kDp;
    const MapResponse peak = engine.Map(request);
    for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
      const double target = fraction * peak.throughput;
      const ProcCountResult r = engine.MinProcs(request, target);
      sizing.AddRow({TextTable::Num(target, 1), TextTable::Num(r.procs),
                     TextTable::Num(r.throughput, 1)});
    }
    std::fputs(sizing.Render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: latency and throughput trade off monotonically along\n"
      "the frontier; hitting the last fraction of peak throughput costs a\n"
      "disproportionate share of the machine.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
