// Reproduces paper Figure 2 as a measurement: the execution model of a
// chain of tasks. Tasks process a stream in pipeline; sender and receiver
// are both occupied for the duration of each communication step; the
// steady-state period equals the bottleneck response time
// f_i = f_com_in + f_exec + f_com_out.
#include <cstdio>

#include "core/evaluator.h"
#include "costmodel/poly.h"
#include "sim/pipeline_sim.h"
#include "support/table.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Figure 2: execution model of a chain of tasks\n");
  std::printf("(three tasks, one processor group each; analytic response\n");
  std::printf(" times vs simulated steady-state period and occupancy)\n\n");

  // t1: 0.4s, t2: 1.0s, t3: 0.3s; transfers 0.2s and 0.1s.
  ChainCostModel costs;
  costs.AddTask(std::make_unique<PolyScalarCost>(0.4, 0.0, 0.0), MemorySpec{});
  costs.AddTask(std::make_unique<PolyScalarCost>(1.0, 0.0, 0.0), MemorySpec{});
  costs.AddTask(std::make_unique<PolyScalarCost>(0.3, 0.0, 0.0), MemorySpec{});
  costs.SetEdge(0, std::make_unique<PolyScalarCost>(),
                std::make_unique<PolyPairCost>(0.2, 0, 0, 0, 0));
  costs.SetEdge(1, std::make_unique<PolyScalarCost>(),
                std::make_unique<PolyPairCost>(0.1, 0, 0, 0, 0));
  const TaskChain chain({Task{"t1"}, Task{"t2"}, Task{"t3"}},
                        std::move(costs));

  Mapping mapping;
  for (int t = 0; t < 3; ++t) {
    mapping.modules.push_back(ModuleAssignment{t, t, 1, 1});
  }

  const Evaluator eval(chain, 3, 1.0);
  PipelineSimulator sim(chain);
  SimOptions options;
  options.num_datasets = 200;
  options.warmup = 50;
  options.collect_trace = true;
  const SimResult result = sim.Run(mapping, options);

  TextTable table({"Task", "f_exec", "f_in", "f_out", "Response f_i",
                   "Occupancy (sim)"});
  const double responses[3] = {
      0.4 + 0.2,        // t1: exec + send
      0.2 + 1.0 + 0.1,  // t2: recv + exec + send
      0.1 + 0.3,        // t3: recv + exec
  };
  const char* f_in[3] = {"-", "0.20", "0.10"};
  const char* f_out[3] = {"0.20", "0.10", "-"};
  const double execs[3] = {0.4, 1.0, 0.3};
  const double period = 1.0 / result.throughput;
  for (int t = 0; t < 3; ++t) {
    table.AddRow({chain.task(t).name, TextTable::Num(execs[t], 2), f_in[t],
                  f_out[t], TextTable::Num(responses[t], 2),
                  TextTable::Num(result.module_utilization[t], 3)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\nBottleneck response (analytic): %.3f s\n", responses[1]);
  std::printf("Simulated steady-state period:  %.3f s (throughput %.3f"
              " ds/s)\n", period, result.throughput);
  std::printf("Mean pipeline latency:          %.3f s (fill + stream)\n",
              result.mean_latency);

  // The paper's Figure 2 timeline, reconstructed from the actual trace
  // (first ~5 pipeline periods).
  std::printf("\n%s", result.trace->RenderGantt(72, 0.0, 7.0).c_str());
  std::printf(
      "\nShape check: the simulated period equals the bottleneck response;\n"
      "the bottleneck task's occupancy approaches 1 while its neighbours\n"
      "idle between rendezvous — exactly the Figure 2 timeline.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
