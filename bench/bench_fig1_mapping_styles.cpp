// Reproduces paper Figure 1 as a measurement: the four ways of mapping a
// chain of data parallel tasks — (a) pure data parallelism, (b) pure task
// parallelism, (c) replicated data parallelism, (d) mixed task/data
// parallelism with replication (the optimal mapping) — compared by
// predicted and simulated throughput on FFT-Hist.
#include <cstdio>

#include "core/baseline.h"
#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "support/table.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Figure 1: throughput of the four mapping styles\n");
  std::printf("(FFT-Hist 256x256, message mode, 64 processors)\n\n");

  const Workload w = workloads::MakeFftHist(256, CommMode::kMessage);
  const int P = w.machine.total_procs();
  const Evaluator eval(w.chain, P, w.machine.node_memory_bytes);
  PipelineSimulator sim(w.chain);
  SimOptions soptions;
  soptions.num_datasets = 400;
  soptions.warmup = 150;

  struct Style {
    std::string label;
    MapResult result;
  };
  const std::vector<Style> styles = {
      {"(a) data parallel", DataParallelMapping(eval, P)},
      {"(b) task parallel", TaskParallelMapping(eval, P)},
      {"(c) replicated data parallel",
       ReplicatedDataParallelMapping(eval, P, ReplicationPolicy::kMaximal)},
      {"(d) mixed (DP optimal)", DpMapper().Map(eval, P)},
  };

  TextTable table(
      {"Style", "Mapping", "Predicted ds/s", "Simulated ds/s", "vs (a)"});
  const double base = sim.Run(styles[0].result.mapping, soptions).throughput;
  for (const Style& s : styles) {
    const double simulated = sim.Run(s.result.mapping, soptions).throughput;
    table.AddRow({s.label, s.result.mapping.ToString(w.chain),
                  TextTable::Num(s.result.throughput, 2),
                  TextTable::Num(simulated, 2),
                  TextTable::Num(simulated / base, 2) + "x"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nShape check: (d) dominates; (c) beats (a); the ordering matches\n"
      "the paper's motivation for mixed task+data parallel mappings.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
