// Ablation: greedy variants (Section 4). The paper's Procedure Greedy
// considers the bottleneck task and its neighbours; Theorem 1's modified
// greedy considers the bottleneck only; Theorem 2 motivates limited
// backtracking. This bench quantifies each variant's optimality gap and
// work on synthetic chains with varying communication intensity.
#include <cstdio>

#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/greedy_mapper.h"
#include "support/table.h"
#include "workloads/synthetic.h"

namespace pipemap::bench {
namespace {

struct VariantStats {
  double ratio_sum = 0.0;
  double worst = 1.0;
  int exact = 0;
  std::uint64_t work_sum = 0;
};

int Run() {
  std::printf("Ablation: greedy variants vs DP optimum\n");
  std::printf("(50 synthetic chains per communication intensity, P=32)\n\n");

  for (double comm_ratio : {0.1, 0.4, 0.8}) {
    VariantStats neighborhood, bottleneck_only, backtracking;
    const int kChains = 50;
    for (int seed = 0; seed < kChains; ++seed) {
      workloads::SyntheticSpec spec;
      spec.num_tasks = 3 + seed % 3;
      spec.machine_procs = 32;
      spec.comm_comp_ratio = comm_ratio;
      spec.memory_tightness = 0.25;
      spec.replicable_fraction = 0.8;
      const Workload w =
          workloads::MakeSynthetic(spec, 9000 + seed);
      const Evaluator eval(w.chain, 32, w.machine.node_memory_bytes);
      const MapResult dp = DpMapper().Map(eval, 32);

      auto record = [&](VariantStats& stats, const GreedyOptions& options) {
        const MapResult r = GreedyMapper(options).Map(eval, 32);
        const double ratio = r.throughput / dp.throughput;
        stats.ratio_sum += ratio;
        stats.worst = std::min(stats.worst, ratio);
        if (ratio > 1.0 - 1e-9) ++stats.exact;
        stats.work_sum += r.work;
      };

      GreedyOptions plain;
      record(neighborhood, plain);
      GreedyOptions bo;
      bo.variant = GreedyOptions::Variant::kBottleneckOnly;
      record(bottleneck_only, bo);
      GreedyOptions bt;
      bt.limited_backtracking = true;
      record(backtracking, bt);
    }

    std::printf("comm/comp ratio %.1f:\n", comm_ratio);
    TextTable table({"Variant", "Mean thr ratio", "Worst", "Optimal found",
                     "Mean work"});
    auto row = [&](const char* name, const VariantStats& s) {
      table.AddRow({name, TextTable::Num(s.ratio_sum / kChains, 4),
                    TextTable::Num(s.worst, 4),
                    std::to_string(s.exact) + "/" + std::to_string(kChains),
                    TextTable::Num(
                        static_cast<double>(s.work_sum) / kChains, 0)});
    };
    row("neighborhood (paper)", neighborhood);
    row("bottleneck-only (Thm 1)", bottleneck_only);
    row("neighborhood + backtracking", backtracking);
    std::fputs(table.Render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Shape check: the neighbourhood variant dominates bottleneck-only as\n"
      "communication grows (neighbour processor counts enter the response\n"
      "time), and limited backtracking closes most of the remaining gap —\n"
      "the Section 4 narrative.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
