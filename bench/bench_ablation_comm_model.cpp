// Ablation: the value of a realistic communication model. The paper argues
// (against Choudhary et al. [4]) that "a realistic model for communication
// is very important for a practical automatic mapping system". This bench
// maps each workload twice — with the full cost model, and with the
// communication-blind allocator — and evaluates both mappings under the
// full model.
#include <cstdio>

#include "core/baseline.h"
#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "support/table.h"
#include "workloads/synthetic.h"
#include "bench_util.h"

namespace pipemap::bench {
namespace {

int Run() {
  std::printf("Ablation: communication-aware vs communication-blind"
              " mapping\n\n");
  TextTable table({"Program", "Size", "Comm", "Comm-aware DP",
                   "Comm-blind", "Penalty"});
  for (const NamedWorkload& c : Table2Configs()) {
    const int P = c.workload.machine.total_procs();
    const Evaluator eval(c.workload.chain, P,
                         c.workload.machine.node_memory_bytes);
    const MapResult aware = DpMapper().Map(eval, P);
    const MapResult blind =
        NoCommAssignmentMapping(eval, P, ReplicationPolicy::kMaximal);
    table.AddRow({c.label, c.size, ToString(c.workload.machine.comm_mode),
                  TextTable::Num(aware.throughput, 2),
                  TextTable::Num(blind.throughput, 2),
                  TextTable::Num(aware.throughput / blind.throughput, 2) +
                      "x"});
  }
  std::fputs(table.Render().c_str(), stdout);

  std::printf("\nSynthetic sweep over communication intensity (P=32, 20\n");
  std::printf("chains per point):\n");
  TextTable sweep({"comm/comp ratio", "Mean penalty", "Max penalty"});
  for (double ratio : {0.05, 0.2, 0.5, 1.0, 2.0}) {
    double sum = 0.0, worst = 0.0;
    const int kChains = 20;
    for (int seed = 0; seed < kChains; ++seed) {
      workloads::SyntheticSpec spec;
      spec.num_tasks = 4;
      spec.machine_procs = 32;
      spec.comm_comp_ratio = ratio;
      spec.memory_tightness = 0.2;
      const Workload w = workloads::MakeSynthetic(spec, 11000 + seed);
      const Evaluator eval(w.chain, 32, w.machine.node_memory_bytes);
      const MapResult aware = DpMapper().Map(eval, 32);
      const MapResult blind =
          NoCommAssignmentMapping(eval, 32, ReplicationPolicy::kMaximal);
      const double penalty = aware.throughput / blind.throughput;
      sum += penalty;
      worst = std::max(worst, penalty);
    }
    sweep.AddRow({TextTable::Num(ratio, 2), TextTable::Num(sum / kChains, 2),
                  TextTable::Num(worst, 2)});
  }
  std::fputs(sweep.Render().c_str(), stdout);
  std::printf(
      "\nShape check: ignoring communication costs little when\n"
      "communication is negligible and increasingly much as it grows —\n"
      "the paper's argument for modeling f_ecom(ps, pr) explicitly.\n");
  return 0;
}

}  // namespace
}  // namespace pipemap::bench

int main() { return pipemap::bench::Run(); }
