// Temporary calibration scratch (not part of the build).
#include <cstdio>

#include "core/baseline.h"
#include "core/dp_mapper.h"
#include "core/evaluator.h"
#include "core/greedy_mapper.h"
#include "machine/feasible.h"
#include "sim/pipeline_sim.h"
#include "workloads/fft_hist.h"
#include "workloads/radar.h"
#include "workloads/stereo.h"

using namespace pipemap;

static void Report(const Workload& w) {
  const int P = w.machine.total_procs();
  Evaluator eval(w.chain, P, w.machine.node_memory_bytes);
  std::printf("=== %s (%s) ===\n", w.name.c_str(), ToString(w.machine.comm_mode));
  for (int t = 0; t < w.chain.size(); ++t) {
    std::printf("  task %s minp=%d exec(1)=%.4f exec(4)=%.4f exec(64)=%.4f\n",
                w.chain.task(t).name.c_str(), eval.MinProcs(t, t),
                eval.Exec(t, 1), eval.Exec(t, 4), eval.Exec(t, 64));
  }
  for (int e = 0; e < w.chain.size() - 1; ++e) {
    std::printf("  edge %d icom(4)=%.4f icom(64)=%.4f ecom(3,4)=%.4f ecom(32,32)=%.4f\n",
                e, eval.ICom(e, 4), eval.ICom(e, 64), eval.ECom(e, 3, 4),
                eval.ECom(e, 32, 32));
  }
  std::printf("  minp(whole)=%d minp(1,2)=%d\n", eval.MinProcs(0, w.chain.size()-1),
              w.chain.size() >= 3 ? eval.MinProcs(1, 2) : -1);

  DpMapper dp;
  auto dpres = dp.Map(eval, P);
  std::printf("  DP:     %.3f ds/s  %s  (work=%llu)\n", dpres.throughput,
              dpres.mapping.ToString(w.chain).c_str(),
              (unsigned long long)dpres.work);
  GreedyMapper greedy;
  auto gres = greedy.Map(eval, P);
  std::printf("  Greedy: %.3f ds/s  %s  (work=%llu)\n", gres.throughput,
              gres.mapping.ToString(w.chain).c_str(),
              (unsigned long long)gres.work);
  auto dpl = DataParallelMapping(eval, P);
  std::printf("  DataPar:%.3f ds/s  ratio=%.2f\n", dpl.throughput,
              dpres.throughput / dpl.throughput);

  PipelineSimulator sim(w.chain);
  SimOptions so;
  auto meas = sim.Run(dpres.mapping, so);
  std::printf("  sim(optimal, no-noise): %.3f ds/s (pred %.3f)\n",
              meas.throughput, dpres.throughput);
}

int main() {
  Report(workloads::MakeFftHist(256, CommMode::kMessage));
  Report(workloads::MakeFftHist(256, CommMode::kSystolic));
  Report(workloads::MakeFftHist(512, CommMode::kMessage));
  Report(workloads::MakeFftHist(512, CommMode::kSystolic));
  Report(workloads::MakeRadar(CommMode::kSystolic));
  Report(workloads::MakeStereo(CommMode::kSystolic));
  return 0;
}
