#!/usr/bin/env python3
"""CI gate over bench_engine_cache's persistent-tier section.

Usage: check_cache_persist.py BENCH_engine_cache.json
                              [--min-disk-speedup X] [--min-mem-speedup X]

Fails (exit 1) when:
  * any application's cache or persist section is not byte-identical to
    the cold solve, or the bench's own all_identical flag is false
    (correctness — always enforced);
  * the best disk-warm speedup across applications is below the floor
    (default 1.2x) — the persistent tier must beat re-solving somewhere;
  * the best memory-warm speedup across applications is below its floor
    (default 1.2x).

Per-application speedups are noisy on small problems and shared CI
hosts, so the perf gates apply to the best application, not each one;
the per-app numbers are printed as notes either way.
"""
import json
import sys


def main() -> int:
    args = sys.argv[1:]
    min_disk = 1.2
    min_mem = 1.2
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--min-disk-speedup":
            min_disk = float(args[i + 1])
            i += 2
        elif args[i] == "--min-mem-speedup":
            min_mem = float(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(paths[0]) as f:
        result = json.load(f)

    failures = []
    best_disk = 0.0
    best_mem = 0.0

    if not result.get("all_identical", False):
        failures.append("bench reports a warm/cold mismatch (all_identical)")

    for app in result.get("applications", []):
        label = "%s %s %s" % (app.get("program", "?"), app.get("size", ""),
                              app.get("comm", ""))
        cache = app.get("cache", {})
        if not cache.get("byte_identical", False):
            failures.append("%s: memory cache hit not byte-identical" % label)
        persist = app.get("persist", {})
        if not persist:
            failures.append("%s: no persist section in the bench JSON"
                            % label)
            continue
        if not persist.get("byte_identical", False):
            failures.append("%s: persistent-tier hit not byte-identical"
                            % label)
        disk = persist.get("disk_speedup", 0.0)
        mem = persist.get("mem_speedup", 0.0)
        best_disk = max(best_disk, disk)
        best_mem = max(best_mem, mem)
        print("  %-30s cold %7.2f ms  disk hit %5.2fx  mem hit %5.2fx"
              % (label, 1e3 * persist.get("cold_s", 0.0), disk, mem))

    if best_disk < min_disk:
        failures.append("best disk-warm speedup %.2fx < %.2fx floor"
                        % (best_disk, min_disk))
    else:
        print("  best disk-warm speedup %.2fx (floor %.2fx)"
              % (best_disk, min_disk))
    if best_mem < min_mem:
        failures.append("best memory-warm speedup %.2fx < %.2fx floor"
                        % (best_mem, min_mem))
    else:
        print("  best memory-warm speedup %.2fx (floor %.2fx)"
              % (best_mem, min_mem))

    for failure in failures:
        print("FAIL: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
