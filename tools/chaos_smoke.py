#!/usr/bin/env python3
"""Chaos smoke: a real pipemap_server under a seeded fault storm.

Usage: chaos_smoke.py SERVER_BIN LOADGEN_BIN [--chaos SPEC] [--retries N]

Starts the daemon with --chaos armed (deterministic seeded injector:
delayed/truncated reads, dropped connections, slowed solves, failing
persistence writes) plus a throwaway --cache-dir so the persistence
seams actually fire, then drives the fixed-seed loadgen mix with a
transport-retry budget. The point is not that every request succeeds —
it is that the failure envelope stays clean:

  * loadgen exits 0: zero malformed responses, zero trace-id
    mismatches, no connection exhausted its retry budget (injected
    drops and truncations must surface as clean reconnect-and-retry,
    never as garbage frames);
  * the storm demonstrably fired (the drain document's chaos block
    reports at least one injection — a smoke that injects nothing
    proves nothing);
  * SIGTERM still drains within the timeout and prints
    '"drained": true' — chaos must not wedge graceful shutdown.

Exit 0 on a clean envelope, 1 with reasons on stderr.
"""
import json
import shutil
import signal
import subprocess
import sys
import tempfile

DEFAULT_CHAOS = ("seed=7,read_delay=0.05:5ms,conn_drop=0.05,"
                 "solver_slow=0.1:5ms,persist_write_fail=0.25")
LOADGEN_ARGS = ["--connections", "4", "--requests", "16", "--variants", "4",
                "--skew", "0.5", "--seed", "3", "--op", "mix"]


def fail(msg):
    print("chaos_smoke: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def main() -> int:
    args = sys.argv[1:]
    chaos_spec = DEFAULT_CHAOS
    retries = 10
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--chaos":
            chaos_spec = args[i + 1]
            i += 2
        elif args[i] == "--retries":
            retries = int(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    server_bin, loadgen_bin = positional

    cache_dir = tempfile.mkdtemp(prefix="pipemap-chaos-smoke-")
    server = subprocess.Popen(
        [server_bin, "--chaos", chaos_spec, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        line = server.stdout.readline().strip()
        parts = line.split()
        if len(parts) != 3 or parts[0] != "listening":
            fail("server did not report a port: %r" % line)
        port = int(parts[2])
        print("chaos_smoke: server on port %d, storm %r" % (port, chaos_spec))

        cmd = ([loadgen_bin, "--port", str(port), "--retries", str(retries)]
               + LOADGEN_ARGS)
        result = subprocess.run(cmd, stdout=subprocess.PIPE, text=True,
                                timeout=120)
        try:
            summary = json.loads(result.stdout)
        except ValueError:
            fail("loadgen emitted no summary JSON (exit %d)"
                 % result.returncode)
        if result.returncode != 0:
            fail("loadgen exited %d: malformed=%s transport_errors=%s "
                 "trace_mismatches=%s"
                 % (result.returncode, summary.get("malformed"),
                    summary.get("transport_errors"),
                    summary.get("trace_mismatches")))
        if summary["malformed"] or summary["trace_mismatches"]:
            fail("storm produced malformed=%d trace_mismatches=%d"
                 % (summary["malformed"], summary["trace_mismatches"]))
        print("chaos_smoke: loadgen clean — ok=%d retries=%d shed=%d "
              "degraded=%d server_errors=%d"
              % (summary["ok"], summary["retries"], summary["shed"],
                 summary["degraded"], summary["server_errors"]))

        server.send_signal(signal.SIGTERM)
        try:
            out, _ = server.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not drain under chaos within 60s")
        if server.returncode != 0:
            fail("server exited %d" % server.returncode)
        if '"drained": true' not in out:
            fail("no drain document on stdout")
        drain = json.loads(out)
        injected = drain.get("chaos")
        if injected is None:
            fail("drain document has no chaos block — storm never armed")
        fired = sum(injected.values())
        if fired == 0:
            fail("chaos armed but injected nothing; raise the "
                 "probabilities or request count")
        print("chaos_smoke: drained clean, %d faults injected: %s"
              % (fired, json.dumps(injected)))
    finally:
        if server.poll() is None:
            server.kill()
        shutil.rmtree(cache_dir, ignore_errors=True)
    print("chaos_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
