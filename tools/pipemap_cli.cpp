// pipemap command-line tool; see tools/cli_lib.h for the command set.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pipemap::cli::RunCli(args, std::cout);
}
