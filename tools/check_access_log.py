#!/usr/bin/env python3
"""Validate a pipemap_server access log (JSONL) against loadgen trace ids.

Checks:
  * every line is one complete JSON object with the expected fields;
  * numeric fields are nonnegative, and the timing identity holds:
    total_us >= queue_wait_us + solve_us - tolerance (the three durations
    are cut from the same two timestamps server-side);
  * with --trace-ids (the file pipemap_loadgen --trace-ids wrote): every
    id the loadgen sent appears EXACTLY once across the given log files —
    no lost requests, no duplicated lines. Extra lines (other clients,
    the metrics scrape) are fine.

Pass the live log and, if rotation happened, the `.1` generation too.
Exit 0 when valid, 1 with a reason on stderr otherwise.
"""

import argparse
import collections
import json
import sys

REQUIRED_FIELDS = (
    "trace_id", "op", "status", "bytes_in", "bytes_out",
    "queue_wait_us", "solve_us", "total_us", "cache_hit", "solver",
    "timed_out",
)
TOLERANCE_US = 2  # double->us truncation slack


def fail(msg):
    print(f"check_access_log: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("logs", nargs="+",
                        help="access log files (live + rotated)")
    parser.add_argument("--trace-ids", default=None,
                        help="file of expected trace ids, one hex id/line")
    args = parser.parse_args()

    seen = collections.Counter()
    lines = 0
    for path in args.logs:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                lines += 1
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: not valid JSON ({e})")
                for field in REQUIRED_FIELDS:
                    if field not in entry:
                        fail(f"{path}:{lineno}: missing field {field!r}")
                for field in ("bytes_in", "bytes_out", "queue_wait_us",
                              "solve_us", "total_us"):
                    value = entry[field]
                    if not isinstance(value, int) or value < 0:
                        fail(f"{path}:{lineno}: {field} must be a "
                             f"nonnegative integer, got {value!r}")
                total = entry["total_us"]
                parts = entry["queue_wait_us"] + entry["solve_us"]
                if total + TOLERANCE_US < parts:
                    fail(f"{path}:{lineno}: total_us {total} < "
                         f"queue_wait_us + solve_us {parts}")
                tid = entry["trace_id"]
                if (not isinstance(tid, str) or len(tid) != 16
                        or any(c not in "0123456789abcdef" for c in tid)):
                    fail(f"{path}:{lineno}: trace_id {tid!r} is not "
                         f"16 lowercase hex digits")
                seen[tid] += 1

    if args.trace_ids:
        with open(args.trace_ids, "r", encoding="utf-8") as f:
            expected = [l.strip() for l in f if l.strip()]
        missing = [t for t in expected if seen[t] == 0]
        duplicated = [t for t in expected if seen[t] > 1]
        if missing:
            fail(f"{len(missing)} loadgen trace ids missing from the log "
                 f"(first: {missing[0]})")
        if duplicated:
            fail(f"{len(duplicated)} loadgen trace ids appear more than "
                 f"once (first: {duplicated[0]})")
        print(f"check_access_log: OK ({lines} lines, "
              f"{len(expected)} loadgen ids each seen exactly once)")
    else:
        print(f"check_access_log: OK ({lines} lines)")


if __name__ == "__main__":
    main()
