#!/usr/bin/env python3
"""Join an access log with a Chrome trace by trace id.

The server stamps each request's trace id on its access-log line (16 hex
digits) and on the args of its server.* spans (`args.v`, the id as an
integer). This tool joins the two and prints one waterfall per request:

    00c0ffee12345678 map ok        queue   120us | solve  3450us
        server.queue_wait      12.0us @ 1234.5us
        server.solve         3450.0us @ 1246.5us
        server.request       3462.0us @ 1234.5us
        engine.map           3301.2us @ 1300.0us

Spans recorded by the engine for the same solve (engine.map carries the
same arg) join automatically. Requests with log lines but no spans (e.g.
tracing disabled, or ids >= 2^63 which the trace arg cannot carry) print
without a waterfall; --require-spans makes that an error.

Exit 0 on success, 1 on malformed inputs or --require-spans misses.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"trace_join: {msg}", file=sys.stderr)
    sys.exit(1)


def load_access_log(paths):
    entries = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: not valid JSON ({e})")
    return entries


def load_spans(path):
    """trace id (int) -> list of span events, sorted by start time."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    by_id = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        arg = event.get("args", {}).get("v")
        if not isinstance(arg, int):
            continue
        by_id.setdefault(arg, []).append(event)
    for spans in by_id.values():
        spans.sort(key=lambda e: e.get("ts", 0.0))
    return by_id


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--access-log", nargs="+", required=True,
                        help="access log files (live + rotated)")
    parser.add_argument("--trace", required=True,
                        help="Chrome trace JSON (pipemap_server --trace)")
    parser.add_argument("--trace-id", default=None,
                        help="only print this request (16 hex digits)")
    parser.add_argument("--require-spans", action="store_true",
                        help="fail if a logged request has no spans")
    args = parser.parse_args()

    entries = load_access_log(args.access_log)
    spans_by_id = load_spans(args.trace)

    joined = 0
    unjoined = 0
    for entry in entries:
        tid_hex = entry.get("trace_id", "")
        if args.trace_id and tid_hex != args.trace_id:
            continue
        try:
            tid = int(tid_hex, 16)
        except ValueError:
            fail(f"access log trace_id {tid_hex!r} is not hex")
        spans = spans_by_id.get(tid, [])
        print(f"{tid_hex} {entry.get('op', '?'):<9} "
              f"{entry.get('status', '?'):<16} "
              f"queue {entry.get('queue_wait_us', 0):>8}us | "
              f"solve {entry.get('solve_us', 0):>8}us | "
              f"total {entry.get('total_us', 0):>8}us")
        if spans:
            joined += 1
            for span in spans:
                print(f"    {span.get('name', '?'):<22} "
                      f"{span.get('dur', 0.0):>10.1f}us @ "
                      f"{span.get('ts', 0.0):.1f}us")
        else:
            unjoined += 1

    print(f"trace_join: {joined} requests with spans, {unjoined} without",
          file=sys.stderr)
    if args.require_spans and unjoined > 0:
        fail(f"{unjoined} logged requests had no spans in the trace")


if __name__ == "__main__":
    main()
