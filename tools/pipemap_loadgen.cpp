// pipemap_loadgen: concurrent load generator for pipemap_server.
//
// Opens N connections, each driven by its own thread issuing requests
// drawn from a small set of synthetic problems with a configurable
// hot-key skew (a high --skew exercises the shared solution cache the
// way a production mix would). Every response is checked against the
// strict JSON validator; the exit status is the contract the CI smoke
// test asserts: 0 only when every connection got a well-formed response
// for every request AND every response echoed the trace id it was sent.
//
// Trace propagation: every request carries a generated trace_id
// (support/trace_context.h); the worker verifies the response echoes it
// back, so the loadgen doubles as an end-to-end test of the server's
// TraceContext plumbing. --trace-ids dumps every id sent (one hex id
// per line) for joining against the server's access log.
//
// Output: one JSON summary on stdout — requests/s, latency percentiles
// overall and per op, ok/error/malformed/trace-mismatch counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "io/serialize.h"
#include "server/client.h"
#include "server/protocol.h"
#include "support/json_verify.h"
#include "support/json_writer.h"
#include "support/parse.h"
#include "support/trace_context.h"
#include "workloads/synthetic.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int requests = 20;  // per connection
  int variants = 4;   // distinct problems in the mix
  double skew = 0.0;  // probability of picking the hot variant
  double deadline_s = 0.0;
  int seed = 42;
  /// "map", "ping", or "mix" (map-dominated with ping and stats mixed in).
  std::string op = "map";
  /// When non-empty: write every trace id sent, one 16-hex-digit id per
  /// line, for joining against the server's access log.
  std::string trace_ids_path;
  /// When non-empty: issue one `metrics` op after the run and write the
  /// raw JSON response here (the exposition scrape CI validates).
  std::string scrape_metrics_path;
  /// When non-empty: issue one `stats` op after the run and write the raw
  /// JSON response here (the restart-warm smoke reads cache/persist/
  /// single-flight counters out of it).
  std::string scrape_stats_path;
  /// Per-connection budget of transport-level retries (failed connects,
  /// connections dying mid-call). Each retry reconnects after a jittered
  /// exponential backoff; only a request that exhausts the budget counts
  /// as a transport error. 0 restores fail-on-first-error.
  int retries = 3;
};

struct WorkerResult {
  std::vector<double> latencies_s;
  /// Parallel to latencies_s: which op each latency belongs to.
  std::vector<std::string> ops;
  std::vector<std::uint64_t> trace_ids_sent;
  std::uint64_t ok = 0;
  std::uint64_t server_errors = 0;  // well-formed {"ok": false, ...}
  std::uint64_t malformed = 0;      // invalid JSON or missing ok field
  std::uint64_t transport_errors = 0;
  /// Responses that did not echo the trace id they were sent.
  std::uint64_t trace_mismatches = 0;
  /// Transport-level retry attempts (reconnect + resend).
  std::uint64_t retries = 0;
  /// Well-formed `overloaded` shed responses (⊆ server_errors).
  std::uint64_t shed = 0;
  /// ok responses flagged degraded: true (brownout fidelity).
  std::uint64_t degraded = 0;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: pipemap_loadgen --port N [--host ADDR] [--connections N]\n"
      "                       [--requests N] [--variants N] [--skew X]\n"
      "                       [--deadline S] [--seed N]\n"
      "                       [--op map|ping|mix] [--retries N]\n"
      "                       [--trace-ids FILE] [--scrape-metrics FILE]\n"
      "                       [--scrape-stats FILE]\n"
      "\n"
      "Drives N concurrent connections, --requests requests each, and\n"
      "validates every response against a strict JSON parser. Every\n"
      "request carries a generated trace_id; the response must echo it.\n"
      "Exits 0 only when zero responses were malformed or mismatched and\n"
      "every connection completed; the summary JSON goes to stdout.\n"
      "--op mix sends a map-dominated mix with ping and stats requests.\n"
      "--trace-ids writes one hex trace id per line (for joining against\n"
      "the server's access log); --scrape-metrics issues one metrics op\n"
      "after the run and saves the raw JSON response; --scrape-stats does\n"
      "the same with a stats op (cache hit/persist/single-flight counters\n"
      "for the restart-warm smoke). --retries bounds per-connection\n"
      "transport retries (jittered exponential backoff + reconnect);\n"
      "retried-then-successful requests do not fail the run.\n");
  return 2;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// The request mix: `variants` distinct problems, serialized once. The
/// hot variant (index 0) is picked with probability `skew`, the rest
/// uniformly — so skew 0.9 reproduces a cache-friendly production mix
/// and skew 0 a cache-hostile one.
struct ProblemMix {
  std::vector<std::string> chains;
  std::vector<std::string> machines;

  explicit ProblemMix(const LoadgenOptions& options) {
    for (int v = 0; v < options.variants; ++v) {
      pipemap::workloads::SyntheticSpec spec;
      spec.num_tasks = 4 + (v % 3);
      spec.machine_procs = 16;
      spec.mean_work_s = 0.05 * (1 + v);
      const pipemap::Workload workload =
          pipemap::workloads::MakeSynthetic(
              spec, static_cast<std::uint64_t>(options.seed + v));
      chains.push_back(pipemap::SerializeChain(
          workload.chain, workload.machine.total_procs()));
      machines.push_back(pipemap::SerializeMachine(workload.machine));
    }
  }

  int Pick(std::mt19937_64& rng, double skew) const {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (chains.size() == 1 || uniform(rng) < skew) return 0;
    std::uniform_int_distribution<int> rest(
        1, static_cast<int>(chains.size()) - 1);
    return rest(rng);
  }
};

/// The op for one request. "mix" is map-dominated (80%) with ping (10%)
/// and stats (10%) riding along, so a single run exercises the solver
/// path, the cheap path, and the introspection path together.
std::string PickOp(const LoadgenOptions& options, std::mt19937_64& rng) {
  if (options.op != "mix") return options.op;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double r = uniform(rng);
  if (r < 0.8) return "map";
  if (r < 0.9) return "ping";
  return "stats";
}

/// True when `response` echoes exactly `trace_id` (as the 16-hex-digit
/// string the server formats). Substring match is safe: the value is
/// quoted and the key appears once per response document.
bool EchoesTraceId(const std::string& response, std::uint64_t trace_id) {
  const std::string needle =
      "\"trace_id\": \"" + pipemap::FormatTraceId(trace_id) + "\"";
  return response.find(needle) != std::string::npos;
}

WorkerResult RunWorker(const LoadgenOptions& options, const ProblemMix& mix,
                       int worker_index) {
  WorkerResult result;
  std::mt19937_64 rng(static_cast<std::uint64_t>(options.seed) * 1000003u +
                      static_cast<std::uint64_t>(worker_index));
  // Jittered exponential backoff: 10ms * 2^attempt scaled by a uniform
  // [0.5, 1.5) draw from the worker's deterministic rng, capped at
  // 500ms so a retry burst cannot stall the run.
  const auto backoff = [&rng](int attempt) {
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    const double base_ms = 10.0 * static_cast<double>(1 << std::min(attempt, 6));
    const double delay_ms = std::min(base_ms * jitter(rng), 500.0);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(delay_ms * 1e3)));
  };
  int budget = options.retries;  // per connection, across all its requests
  std::unique_ptr<pipemap::server::ServerClient> client;
  for (int i = 0; i < options.requests; ++i) {
    pipemap::server::ServerRequest request;
    request.op = PickOp(options, rng);
    request.deadline_s = options.deadline_s;
    request.trace_id = pipemap::GenerateTraceId();
    if (request.op == "map") {
      const int variant = mix.Pick(rng, options.skew);
      request.chain_text = mix.chains[variant];
      request.machine_text = mix.machines[variant];
      request.has_chain = true;
      request.has_machine = true;
      request.algorithm = "auto";
    }
    // Transport retry loop: a failed connect or a connection dying
    // mid-call reconnects and resends the same request (same trace_id)
    // until the per-connection budget runs out. Only budget exhaustion
    // counts as a transport error.
    std::string response;
    bool sent = false;
    int attempt = 0;
    double latency_s = 0.0;
    while (!sent) {
      try {
        if (!client) {
          client = std::make_unique<pipemap::server::ServerClient>(
              options.host, options.port);
        }
        const Clock::time_point start = Clock::now();
        response = client->Call(request);
        latency_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        sent = true;
      } catch (const std::exception&) {
        client.reset();  // dead either way; a retry gets a fresh socket
        if (budget <= 0) break;
        --budget;
        ++result.retries;
        backoff(attempt++);
      }
    }
    if (!sent) {
      ++result.transport_errors;
      break;  // budget exhausted; other workers keep going
    }
    result.latencies_s.push_back(latency_s);
    result.ops.push_back(request.op);
    result.trace_ids_sent.push_back(request.trace_id);
    if (!pipemap::IsValidJson(response)) {
      ++result.malformed;
    } else if (response.find("\"ok\": true") != std::string::npos) {
      ++result.ok;
      if (response.find("\"degraded\": true") != std::string::npos) {
        ++result.degraded;
      }
    } else if (response.find("\"ok\": false") != std::string::npos) {
      ++result.server_errors;
      if (response.find("\"code\": \"overloaded\"") != std::string::npos) {
        ++result.shed;
      }
    } else {
      ++result.malformed;  // valid JSON but not a protocol response
    }
    if (!EchoesTraceId(response, request.trace_id)) {
      ++result.trace_mismatches;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  const std::vector<std::string> args(argv + 1, argv + argc);
  bool saw_port = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "pipemap_loadgen: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    const auto checked_int = [&](const std::string& text) {
      const std::optional<int> v = pipemap::TryParseInt(text);
      if (!v) {
        std::fprintf(stderr, "pipemap_loadgen: %s needs an integer, got"
                     " '%s'\n", arg.c_str(), text.c_str());
        std::exit(2);
      }
      return *v;
    };
    const auto checked_double = [&](const std::string& text) {
      const std::optional<double> v = pipemap::TryParseDouble(text);
      if (!v) {
        std::fprintf(stderr, "pipemap_loadgen: %s needs a number, got"
                     " '%s'\n", arg.c_str(), text.c_str());
        std::exit(2);
      }
      return *v;
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = checked_int(value());
      saw_port = true;
    } else if (arg == "--connections") {
      options.connections = checked_int(value());
    } else if (arg == "--requests") {
      options.requests = checked_int(value());
    } else if (arg == "--variants") {
      options.variants = std::max(1, checked_int(value()));
    } else if (arg == "--skew") {
      options.skew = checked_double(value());
    } else if (arg == "--deadline") {
      options.deadline_s = checked_double(value());
    } else if (arg == "--seed") {
      options.seed = checked_int(value());
    } else if (arg == "--op") {
      options.op = value();
    } else if (arg == "--retries") {
      options.retries = std::max(0, checked_int(value()));
    } else if (arg == "--trace-ids") {
      options.trace_ids_path = value();
    } else if (arg == "--scrape-metrics") {
      options.scrape_metrics_path = value();
    } else if (arg == "--scrape-stats") {
      options.scrape_stats_path = value();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "pipemap_loadgen: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (!saw_port || options.port <= 0) {
    std::fprintf(stderr, "pipemap_loadgen: --port is required\n");
    return Usage();
  }
  if (options.op != "map" && options.op != "ping" && options.op != "mix") {
    std::fprintf(stderr, "pipemap_loadgen: --op must be map, ping, or mix\n");
    return Usage();
  }

  const ProblemMix mix(options);
  std::vector<WorkerResult> results(
      static_cast<std::size_t>(options.connections));
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] { results[c] = RunWorker(options, mix, c); });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start)
                             .count();

  WorkerResult total;
  std::map<std::string, std::vector<double>> per_op;
  for (const WorkerResult& r : results) {
    total.ok += r.ok;
    total.server_errors += r.server_errors;
    total.malformed += r.malformed;
    total.transport_errors += r.transport_errors;
    total.trace_mismatches += r.trace_mismatches;
    total.retries += r.retries;
    total.shed += r.shed;
    total.degraded += r.degraded;
    total.latencies_s.insert(total.latencies_s.end(), r.latencies_s.begin(),
                             r.latencies_s.end());
    total.trace_ids_sent.insert(total.trace_ids_sent.end(),
                                r.trace_ids_sent.begin(),
                                r.trace_ids_sent.end());
    for (std::size_t i = 0; i < r.latencies_s.size(); ++i) {
      per_op[r.ops[i]].push_back(r.latencies_s[i]);
    }
  }
  std::sort(total.latencies_s.begin(), total.latencies_s.end());
  const std::uint64_t completed =
      static_cast<std::uint64_t>(total.latencies_s.size());

  if (!options.trace_ids_path.empty()) {
    if (std::FILE* f = std::fopen(options.trace_ids_path.c_str(), "w")) {
      for (const std::uint64_t id : total.trace_ids_sent) {
        const std::string line = pipemap::FormatTraceId(id) + "\n";
        std::fwrite(line.data(), 1, line.size(), f);
      }
      std::fclose(f);
    } else {
      std::fprintf(stderr, "pipemap_loadgen: cannot write %s\n",
                   options.trace_ids_path.c_str());
      return 1;
    }
  }

  // Scrapes run on a fresh connection, after the load is done, so the
  // snapshot covers the whole run.
  bool scrape_failed = false;
  const auto scrape = [&](const char* op, const std::string& path) {
    if (path.empty()) return;
    bool failed = false;
    try {
      pipemap::server::ServerClient client(options.host, options.port);
      pipemap::server::ServerRequest request;
      request.op = op;
      request.trace_id = pipemap::GenerateTraceId();
      const std::string response = client.Call(request);
      if (!pipemap::IsValidJson(response) ||
          response.find("\"ok\": true") == std::string::npos) {
        failed = true;
      }
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fwrite(response.data(), 1, response.size(), f);
        std::fclose(f);
      } else {
        failed = true;
      }
    } catch (const std::exception&) {
      failed = true;
    }
    if (failed) {
      std::fprintf(stderr, "pipemap_loadgen: %s scrape failed\n", op);
      scrape_failed = true;
    }
  };
  scrape("metrics", options.scrape_metrics_path);
  scrape("stats", options.scrape_stats_path);

  pipemap::JsonWriter w;
  w.BeginObject();
  w.Key("connections").Int(options.connections);
  w.Key("requests_per_connection").Int(options.requests);
  w.Key("op").String(options.op);
  w.Key("skew").Double(options.skew);
  w.Key("completed").UInt(completed);
  w.Key("ok").UInt(total.ok);
  w.Key("server_errors").UInt(total.server_errors);
  w.Key("malformed").UInt(total.malformed);
  w.Key("transport_errors").UInt(total.transport_errors);
  w.Key("trace_mismatches").UInt(total.trace_mismatches);
  w.Key("retries").UInt(total.retries);
  w.Key("shed").UInt(total.shed);
  w.Key("degraded").UInt(total.degraded);
  w.Key("elapsed_s").Double(elapsed);
  w.Key("requests_per_s")
      .Double(elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0);
  w.Key("latency_ms").BeginObject();
  w.Key("p50").Double(Percentile(total.latencies_s, 0.50) * 1e3);
  w.Key("p95").Double(Percentile(total.latencies_s, 0.95) * 1e3);
  w.Key("p99").Double(Percentile(total.latencies_s, 0.99) * 1e3);
  w.EndObject();
  w.Key("per_op").BeginObject();
  for (auto& [op_name, latencies] : per_op) {
    std::sort(latencies.begin(), latencies.end());
    w.Key(op_name).BeginObject();
    w.Key("count").UInt(static_cast<std::uint64_t>(latencies.size()));
    w.Key("p50_ms").Double(Percentile(latencies, 0.50) * 1e3);
    w.Key("p95_ms").Double(Percentile(latencies, 0.95) * 1e3);
    w.Key("p99_ms").Double(Percentile(latencies, 0.99) * 1e3);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  std::fputs(w.str().c_str(), stdout);

  const std::uint64_t expected = static_cast<std::uint64_t>(
      options.connections) * static_cast<std::uint64_t>(options.requests);
  if (total.malformed > 0 || total.transport_errors > 0 ||
      total.trace_mismatches > 0 || completed != expected || scrape_failed) {
    return 1;
  }
  return 0;
}
