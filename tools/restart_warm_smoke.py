#!/usr/bin/env python3
"""Two-phase restart-warm smoke over the persistent solution-cache tier.

Usage: restart_warm_smoke.py SERVER_BIN LOADGEN_BIN
                             [--cache-dir DIR] [--min-hit-ratio X]

Phase 1 starts pipemap_server with --cache-dir, drives a fixed-seed map
workload through pipemap_loadgen (so the request set is reproducible),
and stops the server with SIGTERM — the graceful drain flushes pending
write-behind spills to disk. Phase 2 starts a brand-new server process
on the same directory, replays the identical workload, scrapes the
`stats` op, and fails (exit 1) unless:

  * both loadgen runs exit 0 (every response well-formed, every trace
    id echoed);
  * both servers drain cleanly ('"drained": true' on stdout, exit 0);
  * phase 2's cache hit ratio hits/(hits+misses) exceeds the floor
    (default 0.5) — a fresh process must remember the first one's work;
  * phase 2 served at least one request from disk
    (cache.persist.hits >= 1) and saw no corrupt entries or write
    errors.
"""
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile

LOADGEN_ARGS = ["--connections", "4", "--requests", "8", "--variants", "4",
                "--skew", "0.5", "--seed", "7", "--op", "map"]


def start_server(server_bin, cache_dir):
    proc = subprocess.Popen(
        [server_bin, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    line = proc.stdout.readline().strip()
    parts = line.split()
    if len(parts) != 3 or parts[0] != "listening":
        proc.kill()
        raise RuntimeError("server did not report a port: %r" % line)
    return proc, int(parts[2])


def stop_server(proc, phase):
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise RuntimeError("phase %d: server did not drain in time" % phase)
    if proc.returncode != 0:
        raise RuntimeError("phase %d: server exited %d" % (phase,
                                                           proc.returncode))
    if '"drained": true' not in out:
        raise RuntimeError("phase %d: no drain document on stdout" % phase)


def run_loadgen(loadgen_bin, port, phase, extra=()):
    cmd = [loadgen_bin, "--port", str(port)] + LOADGEN_ARGS + list(extra)
    result = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if result.returncode != 0:
        raise RuntimeError("phase %d: loadgen exited %d" % (phase,
                                                            result.returncode))


def main() -> int:
    args = sys.argv[1:]
    cache_dir = None
    min_hit_ratio = 0.5
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--cache-dir":
            cache_dir = args[i + 1]
            i += 2
        elif args[i] == "--min-hit-ratio":
            min_hit_ratio = float(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    server_bin, loadgen_bin = positional

    own_dir = cache_dir is None
    if own_dir:
        cache_dir = tempfile.mkdtemp(prefix="pipemap-restart-warm-")
    stats_path = os.path.join(cache_dir, "phase2_stats.json")
    try:
        # Phase 1: solve the fixed-seed mix cold and spill it to disk.
        proc, port = start_server(server_bin, cache_dir)
        run_loadgen(loadgen_bin, port, 1)
        stop_server(proc, 1)
        entries = [n for n in os.listdir(cache_dir) if n.endswith(".pmc")]
        if not entries:
            print("FAIL: phase 1 drained without spilling any cache entries",
                  file=sys.stderr)
            return 1
        print("phase 1: ok (%d entries spilled to %s)"
              % (len(entries), cache_dir))

        # Phase 2: a fresh process on the same directory replays the mix.
        proc, port = start_server(server_bin, cache_dir)
        run_loadgen(loadgen_bin, port, 2,
                    extra=["--scrape-stats", stats_path])
        with open(stats_path) as f:
            stats = json.load(f)
        stop_server(proc, 2)
    finally:
        if own_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)

    cache = stats["cache"]
    persist = cache["persist"]
    lookups = cache["hits"] + cache["misses"]
    hit_ratio = cache["hits"] / lookups if lookups else 0.0
    print("phase 2: hit ratio %.2f (%d/%d), persist hits %d, "
          "corrupt %d, errors %d"
          % (hit_ratio, cache["hits"], lookups, persist["hits"],
             persist["corrupt"], persist["errors"]))

    failures = []
    if not persist["enabled"]:
        failures.append("phase 2 server did not enable the persistent tier")
    if hit_ratio <= min_hit_ratio:
        failures.append("phase 2 hit ratio %.2f <= %.2f floor: the restart "
                        "forgot phase 1's solves" % (hit_ratio,
                                                     min_hit_ratio))
    if persist["hits"] < 1:
        failures.append("phase 2 served nothing from disk (persist.hits == 0)")
    if persist["corrupt"] or persist["errors"]:
        failures.append("persistent tier reported corrupt=%d errors=%d"
                        % (persist["corrupt"], persist["errors"]))
    for failure in failures:
        print("FAIL: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
