#!/usr/bin/env python3
"""CI perf-smoke gate over bench_dp_parallel_scaling's JSON output.

Usage: check_dp_perf.py BENCH_dp_parallel.json baseline.json

Fails (exit 1) when:
  * any thread count changed the mapping, or the incremental re-solve
    diverged from the cold solve (correctness — always enforced);
  * the single-thread wall time regressed more than the baseline's
    tolerance (default 20%) over its recorded wall time;
  * the host has >= 4 usable cores and the non-oversubscribed 4-thread
    run's speedup is below the baseline's floor (default 2.5x).

The speedup gate is skipped — with a note, not a failure — on hosts with
fewer than 4 cores, where the measured "speedup" is scheduling noise.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        result = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failures = []
    notes = []

    if not result.get("identical_mappings", False):
        failures.append("determinism: thread counts disagree on the mapping")
    inc = result.get("incremental", {})
    if not inc.get("identical_to_cold", False):
        failures.append("incremental: warm re-solve diverged from cold")
    elif not inc.get("used_sweep_prefix", False):
        failures.append("incremental: warm re-solve did not reuse the prefix")
    else:
        notes.append(
            "incremental re-solve: %.1fx over cold (re-swept from stage %d)"
            % (inc.get("speedup", 0.0), inc.get("resweep_from", -1)))

    runs = {r["threads"]: r for r in result.get("runs", [])}
    single = runs.get(1)
    if single is None:
        failures.append("no single-thread run in the benchmark output")
    else:
        tolerance = baseline.get("regression_tolerance", 0.2)
        limit = baseline["single_thread_wall_s"] * (1.0 + tolerance)
        if single["wall_s"] > limit:
            failures.append(
                "single-thread regression: %.3fs > %.3fs "
                "(baseline %.3fs + %d%%)"
                % (single["wall_s"], limit, baseline["single_thread_wall_s"],
                   int(tolerance * 100)))
        else:
            notes.append("single-thread wall %.3fs (limit %.3fs)"
                         % (single["wall_s"], limit))

    hardware_threads = result.get("hardware_threads", 1)
    four = runs.get(4)
    min_speedup = baseline.get("min_speedup_4t", 2.5)
    if hardware_threads >= 4 and four and not four.get("oversubscribed"):
        if four["speedup"] < min_speedup:
            failures.append("4-thread speedup %.2fx < %.2fx floor"
                            % (four["speedup"], min_speedup))
        else:
            notes.append("4-thread speedup %.2fx (floor %.2fx)"
                         % (four["speedup"], min_speedup))
    else:
        notes.append(
            "4-thread speedup gate skipped: host reports %d usable core(s)"
            % hardware_threads)

    for note in notes:
        print("  " + note)
    for failure in failures:
        print("FAIL: " + failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
