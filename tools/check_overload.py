#!/usr/bin/env python3
"""Gate BENCH_overload.json (bench_overload's overload-resilience ladder).

What must hold, at the deepest rung of the ladder (offered load ~2x the
baseline queue's saturation point, where BOTH modes are refusing work and
the comparison is symmetric):

  * bounded tail — served p99 with shedding armed is at most
    --p99-ratio (default 0.9) of the no-shedding baseline's served p99.
    The whole point of shedding is that admitted work waits behind a
    watermark-bounded queue instead of a full one.
  * goodput parity — ok responses/s with shedding is at least
    --goodput-ratio (default 0.75) of the baseline's. Shedding refuses
    work early; it must not refuse work the workers had capacity for.
    The tolerance absorbs single-core CI noise; the expected ratio is
    ~1.0 and the run records the actual number for trending.
  * shedding actually engaged — shed > 0 at the gate rung (a ladder that
    never saturates gates nothing).

And for the brownout probe (unmeetable SLO, hysteresis armed):

  * the storm shed (burn -> shed), brownout engaged (entries >= 1), and
    at least one admitted solve was served degraded — the full
    burn -> brownout -> degraded-serving ladder demonstrably ran.

Contract checks (any mode, any rung): no malformed responses, no
transport errors against the healthy in-process server, and the bench's
own contract_violated flag is false.

Exit 0 when every gate holds, 1 with reasons on stderr otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_overload: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_overload.json path")
    parser.add_argument("--p99-ratio", type=float, default=0.9,
                        help="max shed_p99 / baseline_p99 at the gate rung")
    parser.add_argument("--goodput-ratio", type=float, default=0.75,
                        help="min shed_goodput / baseline_goodput at the "
                             "gate rung")
    args = parser.parse_args()

    with open(args.bench_json, "r", encoding="utf-8") as f:
        bench = json.load(f)

    if bench.get("bench") != "overload":
        fail(f"not a bench_overload document: {bench.get('bench')!r}")
    if bench.get("contract_violated"):
        fail("bench reported contract_violated: true")

    ladder = bench.get("ladder", [])
    if not ladder:
        fail("empty ladder")
    for rung in ladder:
        for mode in ("shedding", "baseline"):
            m = rung[mode]
            if m["malformed"] or m["transport_errors"] or m["other_errors"]:
                fail(f"rung clients={rung['clients']} mode={mode}: "
                     f"malformed={m['malformed']} "
                     f"transport={m['transport_errors']} "
                     f"other={m['other_errors']}")

    gate = ladder[-1]
    shed, base = gate["shedding"], gate["baseline"]
    clients = gate["clients"]
    if shed["shed"] == 0:
        fail(f"gate rung clients={clients}: shedding never engaged")
    if base["p99_ms"] <= 0 or base["goodput_rps"] <= 0:
        fail(f"gate rung clients={clients}: baseline served nothing")

    p99_ratio = shed["p99_ms"] / base["p99_ms"]
    goodput_ratio = shed["goodput_rps"] / base["goodput_rps"]
    print(f"check_overload: gate rung clients={clients}: "
          f"p99 {shed['p99_ms']:.1f}/{base['p99_ms']:.1f} ms "
          f"(ratio {p99_ratio:.2f}, max {args.p99_ratio}), "
          f"goodput {shed['goodput_rps']:.1f}/{base['goodput_rps']:.1f} ok/s "
          f"(ratio {goodput_ratio:.2f}, min {args.goodput_ratio})")
    if p99_ratio > args.p99_ratio:
        fail(f"shed p99 not bounded: ratio {p99_ratio:.2f} > "
             f"{args.p99_ratio}")
    if goodput_ratio < args.goodput_ratio:
        fail(f"shedding gave up goodput: ratio {goodput_ratio:.2f} < "
             f"{args.goodput_ratio}")

    probe = bench.get("brownout_probe")
    if probe is None:
        fail("missing brownout_probe")
    if probe["malformed"] or probe["transport_errors"] or \
            probe["other_errors"]:
        fail("brownout probe had malformed/transport/other errors")
    if probe["shed"] == 0:
        fail("brownout probe never shed (burn signal never fired)")
    if probe["ok"] == 0:
        fail("brownout probe served nothing")
    if probe["degraded"] == 0:
        fail("brownout probe never served a degraded response")
    if bench.get("brownout_entries", 0) < 1:
        fail("brownout probe never entered brownout")
    print(f"check_overload: brownout probe ok={probe['ok']} "
          f"shed={probe['shed']} degraded={probe['degraded']} "
          f"entries={bench['brownout_entries']}")
    print("check_overload: all gates passed")


if __name__ == "__main__":
    main()
