#include "tools/cli_lib.h"

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "core/diagnostics.h"
#include "core/explain.h"
#include "core/evaluator.h"
#include "core/sensitivity.h"
#include "engine/fingerprint.h"
#include "engine/mapping_engine.h"
#include "fault/fault_plan.h"
#include "fault/repair.h"
#include "io/serialize.h"
#include "machine/feasible.h"
#include "sim/attribution.h"
#include "sim/pipeline_sim.h"
#include "sim/run_report.h"
#include "support/error.h"
#include "support/metrics.h"
#include "support/parse.h"
#include "support/tracer.h"
#include "workloads/fft_hist.h"
#include "workloads/radar.h"
#include "workloads/stereo.h"

namespace pipemap::cli {
namespace {

constexpr const char* kUsage = R"(usage: pipemap_cli <command> [options]

commands:
  export-workload <fft256|fft512|radar|stereo> <message|systolic>
                  --chain-out FILE --machine-out FILE
  map       --chain FILE --machine FILE [--procs N]
            [--algorithm dp|greedy|auto|brute]
            [--objective throughput|latency] [--floor X]
            [--replication maximal|none|search] [--no-clustering]
            [--unconstrained] [--engine-cache] [--cache-dir DIR]
            [--cache-dir-max-bytes N]
            [--threads N] [--solver-deadline S] [--out FILE]
            [--metrics FILE] [--trace FILE]
  simulate  --chain FILE --machine FILE --mapping FILE [--datasets N]
            [--noise X] [--seed N] [--faults FILE|SPEC]
            [--repair-policy full|drop-replica|floor]
            [--solver-deadline S]
  report    --chain FILE --machine FILE [--procs N]
            [--algorithm dp|greedy|auto|brute]
            [--datasets N] [--noise X] [--seed N] [--threads N]
            [--solver-deadline S]
            [--out FILE] [--trace FILE] [--metrics FILE] [--unconstrained]
            [--engine-cache] [--cache-dir DIR] [--cache-dir-max-bytes N]
  explain   --chain FILE --machine FILE --mapping FILE
  frontier  --chain FILE --machine FILE [--points N] [--threads N]
            [--metrics FILE] [--trace FILE] [--engine-cache]
  diagnose  --chain FILE --machine FILE
  sensitivity --chain FILE --machine FILE --mapping FILE
  size      --chain FILE --machine FILE --target X [--threads N]
            [--metrics FILE] [--trace FILE] [--engine-cache]

--threads 0 (the default) uses every hardware thread for the mapping
algorithms; --threads 1 forces the serial path. Mappings are identical for
every thread count.

--algorithm auto runs the solver portfolio: greedy for a fast incumbent,
the exact DP warm-started from it, and (on tiny instances) a brute-force
certification pass. --engine-cache answers repeated identical requests
from the in-process solution cache; cached mappings are byte-identical
to recomputed ones. --cache-dir DIR additionally persists solved
mappings to DIR (one checksummed file per fingerprint) and implies
--engine-cache: a later pipemap_cli run — or a pipemap_server — pointed
at the same directory answers the same problem from disk without
re-solving. --cache-dir-max-bytes N bounds the directory: crossing the
cap evicts the oldest entries first. The directory is guarded by an
advisory lock; a second process sharing it falls back to read-only.
Unknown commands and flags are rejected.

--metrics FILE writes a JSON snapshot of the engine's internal counters,
gauges, and histograms; --trace FILE writes Chrome trace-event JSON
(load in chrome://tracing or https://ui.perfetto.dev). Neither flag
changes the computed mapping.

--solver-deadline S interrupts a solve after S seconds of wall clock and
returns the best incumbent found so far (flagged as not certified). The
solvers check the deadline cooperatively inside their inner loops, so
even a single long DP stage is interrupted mid-flight.

--faults injects failures into the simulation: either a fault-plan file
(pipemap-faults v1) or an inline spec of ';'-separated events —
crash@T:mM[.iI] (instance I of module M crashes at time T; omit .iI to
crash all instances), slow@T+D:mM[.iI]xF (compute slowdown by factor F
during [T,T+D)), link@T+D:eExF (transfer degradation on the boundary
between modules E and E+1). With --repair-policy, a crash additionally
triggers the RepairEngine: the mapping is repaired onto the surviving
processors (full = re-solve, drop-replica = shrink the failed module,
floor = drop-replica when it retains >= 50% throughput, else re-solve)
and the recovery report plus a fault-free replay of the repaired mapping
are printed.

report maps the chain, executes the mapping in the pipeline simulator,
and emits one machine-readable JSON run report (schema in DESIGN.md):
the mapping, predicted vs simulated throughput/latency, per-module
utilization, a ranked bottleneck-divergence list, an embedded metrics
snapshot, and the trace path when --trace is given. --out FILE writes
the report to a file (a rank summary goes to stdout); without --out the
report itself goes to stdout.
)";

/// A command-line mistake (unknown command/flag, malformed invocation).
/// RunCli reports these with the usage text appended, unlike runtime
/// failures which get the one-line error only.
class UsageError : public InvalidArgument {
 public:
  using InvalidArgument::InvalidArgument;
};

/// Checked numeric parsing for flag values (support/parse.h): the whole
/// token must parse, and the value must be finite. std::stod/stoi alone
/// would accept "3abc", throw std::out_of_range as an unhandled crash on
/// "1e999", and turn typos into silent garbage.
double CheckedDouble(const std::string& key, const std::string& text) {
  if (const std::optional<double> v = TryParseDouble(text)) return *v;
  throw UsageError("invalid numeric value for --" + key + ": '" + text + "'");
}

int CheckedInt(const std::string& key, const std::string& text) {
  if (const std::optional<int> v = TryParseInt(text)) return *v;
  throw UsageError("invalid integer value for --" + key + ": '" + text +
                   "'");
}

/// Strict flag parser: --key value pairs plus standalone switches, each
/// validated against the owning command's allowlist so a typo fails with
/// a usage error instead of being silently ignored.
class Flags {
 public:
  Flags(const std::string& command, const std::vector<std::string>& args,
        std::size_t start, std::set<std::string> value_flags,
        std::set<std::string> switch_flags = {}) {
    for (std::size_t i = start; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.rfind("--", 0) != 0) {
        throw UsageError("unexpected argument: " + a);
      }
      const std::string key = a.substr(2);
      if (switch_flags.count(key) > 0) {
        switches_.insert(key);
      } else if (value_flags.count(key) > 0) {
        if (i + 1 >= args.size()) {
          throw UsageError("missing value for --" + key);
        }
        values_[key] = args[++i];
      } else {
        throw UsageError("unknown flag --" + key + " for '" + command + "'");
      }
    }
  }

  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string Require(const std::string& key) const {
    const auto v = Get(key);
    if (!v) throw UsageError("missing required flag --" + key);
    return *v;
  }

  bool Has(const std::string& key) const { return switches_.count(key) > 0; }

  double GetDouble(const std::string& key, double fallback) const {
    const auto v = Get(key);
    return v ? CheckedDouble(key, *v) : fallback;
  }

  int GetInt(const std::string& key, int fallback) const {
    const auto v = Get(key);
    return v ? CheckedInt(key, *v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

struct LoadedProblem {
  TaskChain chain;
  MachineConfig machine;
};

/// Arms the process-wide metrics registry and tracer for one CLI command
/// when --metrics/--trace name output files. Construct before the command
/// does any work (the Evaluator's tabulation pass is worth observing);
/// call Write() after it succeeds. The destructor restores the collectors
/// to their disabled default even when the command throws.
class ObservationSession {
 public:
  explicit ObservationSession(const Flags& flags)
      : metrics_path_(flags.Get("metrics")), trace_path_(flags.Get("trace")) {
    if (metrics_path_) {
      MetricsRegistry::Global().Reset();
      MetricsRegistry::Global().Enable(true);
    }
    if (trace_path_) {
      Tracer::Global().Clear();
      Tracer::Global().Enable(true);
    }
  }

  ~ObservationSession() {
    if (metrics_path_) MetricsRegistry::Global().Enable(false);
    if (trace_path_) Tracer::Global().Enable(false);
  }

  ObservationSession(const ObservationSession&) = delete;
  ObservationSession& operator=(const ObservationSession&) = delete;

  void Write(std::ostream& out) const {
    if (metrics_path_) {
      WriteTextFile(*metrics_path_,
                    MetricsRegistry::Global().Snapshot().ToJson());
      out << "wrote " << *metrics_path_ << "\n";
    }
    if (trace_path_) {
      WriteTextFile(*trace_path_, Tracer::Global().ToChromeJson());
      out << "wrote " << *trace_path_ << "\n";
    }
  }

 private:
  std::optional<std::string> metrics_path_;
  std::optional<std::string> trace_path_;
};

LoadedProblem Load(const Flags& flags) {
  // Validate all required flags before touching the filesystem so that a
  // usage mistake is reported as such.
  const std::string chain_path = flags.Require("chain");
  const std::string machine_path = flags.Require("machine");
  return LoadedProblem{ParseChain(ReadTextFile(chain_path)),
                       ParseMachine(ReadTextFile(machine_path))};
}

int ExportWorkload(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 3) {
    throw InvalidArgument("export-workload needs <name> <comm-mode>");
  }
  const std::string& name = args[1];
  const std::string& mode_name = args[2];
  if (mode_name != "message" && mode_name != "systolic") {
    throw InvalidArgument("unknown comm mode: " + mode_name);
  }
  const CommMode mode =
      mode_name == "systolic" ? CommMode::kSystolic : CommMode::kMessage;
  std::optional<Workload> workload;
  if (name == "fft256") workload = workloads::MakeFftHist(256, mode);
  if (name == "fft512") workload = workloads::MakeFftHist(512, mode);
  if (name == "radar") workload = workloads::MakeRadar(mode);
  if (name == "stereo") workload = workloads::MakeStereo(mode);
  if (!workload) throw InvalidArgument("unknown workload: " + name);

  const Flags flags("export-workload", args, 3, {"chain-out", "machine-out"});
  const std::string chain_path = flags.Require("chain-out");
  const std::string machine_path = flags.Require("machine-out");
  WriteTextFile(chain_path,
                SerializeChain(workload->chain,
                               workload->machine.total_procs()));
  WriteTextFile(machine_path, SerializeMachine(workload->machine));
  out << "wrote " << chain_path << " and " << machine_path << " ("
      << workload->name << ", " << ToString(mode) << ")\n";
  return 0;
}

/// Shared map/report request assembly: replication policy, clustering,
/// threading, machine feasibility, cache opt-in, and the solver policy
/// derived from --algorithm / --objective / --floor.
MapRequest BuildMapRequest(const Flags& flags, const LoadedProblem& problem) {
  MapRequest request;
  request.chain = &problem.chain;
  request.machine = problem.machine;
  request.total_procs = flags.GetInt("procs", problem.machine.total_procs());
  request.options.num_threads = flags.GetInt("threads", 0);
  const std::string replication = flags.Get("replication").value_or("maximal");
  if (replication == "none") {
    request.options.replication = ReplicationPolicy::kNone;
  } else if (replication == "search") {
    request.options.replication = ReplicationPolicy::kSearch;
  } else if (replication != "maximal") {
    throw UsageError("unknown replication policy: " + replication);
  }
  request.options.allow_clustering = !flags.Has("no-clustering");
  request.machine_feasibility = !flags.Has("unconstrained");
  request.use_cache = flags.Has("engine-cache");
  if (const auto dir = flags.Get("cache-dir")) {
    // Persistence lives on the shared engine's cache, so every later
    // command in this process (and the cache's write-behind spill of this
    // solve) sees the same directory. Implies --engine-cache.
    DiskPersistOptions persist;
    persist.dir = *dir;
    if (const auto cap = flags.Get("cache-dir-max-bytes")) {
      const int bytes = CheckedInt("cache-dir-max-bytes", *cap);
      if (bytes <= 0) {
        throw UsageError("--cache-dir-max-bytes must be positive, got " +
                         *cap);
      }
      persist.max_bytes = static_cast<std::uint64_t>(bytes);
    }
    MappingEngine::Shared().cache().EnablePersistence(persist);
    request.use_cache = true;
  }
  if (const auto deadline = flags.Get("solver-deadline")) {
    const double seconds = CheckedDouble("solver-deadline", *deadline);
    if (seconds < 0.0) {
      throw UsageError("--solver-deadline must be positive (0 disables"
                       " the deadline), got " + *deadline);
    }
    // 0 means "no deadline" at the engine boundary (Deadline::HasBudget),
    // same as omitting the flag.
    request.time_budget_s = seconds;
  }

  const std::string objective = flags.Get("objective").value_or("throughput");
  const std::string algorithm = flags.Get("algorithm").value_or("dp");
  if (objective == "latency") {
    request.solver = SolverPolicy::kLatency;
    if (const auto floor = flags.Get("floor")) {
      request.objective = MapObjective::kLatencyWithFloor;
      request.min_throughput = CheckedDouble("floor", *floor);
    } else {
      request.objective = MapObjective::kLatency;
    }
  } else if (objective == "throughput") {
    request.objective = MapObjective::kThroughput;
    if (algorithm == "dp") {
      request.solver = SolverPolicy::kDp;
    } else if (algorithm == "greedy") {
      request.solver = SolverPolicy::kGreedy;
    } else if (algorithm == "auto") {
      request.solver = SolverPolicy::kAuto;
    } else if (algorithm == "brute") {
      request.solver = SolverPolicy::kBrute;
    } else {
      throw UsageError("unknown algorithm: " + algorithm);
    }
  } else {
    throw UsageError("unknown objective: " + objective);
  }
  return request;
}

int MapCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags(
      "map", args, 1,
      {"chain", "machine", "procs", "threads", "algorithm", "objective",
       "floor", "replication", "solver-deadline", "out", "metrics", "trace",
       "cache-dir", "cache-dir-max-bytes"},
      {"no-clustering", "unconstrained", "engine-cache"});
  const LoadedProblem problem = Load(flags);
  const ObservationSession observation(flags);
  const MapRequest request = BuildMapRequest(flags, problem);
  const MapResponse response = MappingEngine::Shared().Map(request);
  Mapping mapping = response.mapping;

  if (request.objective == MapObjective::kThroughput) {
    out << "objective: maximum throughput (" << response.solver << ")\n";
  } else {
    out << "objective: minimum latency";
    if (request.objective == MapObjective::kLatencyWithFloor) {
      out << " with throughput >= " << *flags.Get("floor");
    }
    out << "\n";
  }
  if (request.use_cache) {
    out << "engine cache: ";
    if (response.cache_hit) {
      out << "hit [" << response.cache_tier << "]";
    } else {
      out << "miss";
    }
    out << " (fingerprint " << FingerprintHex(response.fingerprint) << ")\n";
  }
  if (response.timed_out) {
    out << "note: solver deadline expired; this is the best incumbent, not"
           " a certified optimum\n";
  }

  const Evaluator eval(problem.chain, request.total_procs,
                       problem.machine.node_memory_bytes,
                       request.options.num_threads);
  if (!flags.Has("unconstrained")) {
    mapping = FeasibilityChecker(problem.machine).MakeFeasible(mapping, eval);
  }

  out << "mapping: " << mapping.ToString(problem.chain) << "\n";
  out << ExplainMapping(eval, mapping).Render(problem.chain);
  if (const auto path = flags.Get("out")) {
    WriteTextFile(*path, SerializeMapping(mapping));
    out << "wrote " << *path << "\n";
  }
  observation.Write(out);
  return 0;
}

int SimulateCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("simulate", args, 1,
                    {"chain", "machine", "mapping", "datasets", "noise",
                     "seed", "faults", "repair-policy", "solver-deadline"});
  const LoadedProblem problem = Load(flags);
  const Mapping mapping =
      ParseMapping(ReadTextFile(flags.Require("mapping")));

  SimOptions options;
  options.num_datasets = flags.GetInt("datasets", 400);
  options.warmup = options.num_datasets / 4;
  const double noise = flags.GetDouble("noise", 0.0);
  options.noise.systematic_stddev = noise;
  options.noise.jitter_stddev = noise / 3.0;
  options.noise.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  FaultPlan plan;
  if (const auto spec = flags.Get("faults")) {
    plan = LoadFaultPlan(*spec);
    options.faults = &plan;
  } else if (flags.Get("repair-policy")) {
    throw UsageError("--repair-policy requires --faults");
  }

  PipelineSimulator sim(problem.chain);
  const SimResult result = sim.Run(mapping, options);
  out << "simulated " << options.num_datasets << " data sets\n";
  out << "throughput:  " << result.throughput << " data sets/s\n";
  out << "mean latency: " << result.mean_latency << " s\n";
  out << "makespan:    " << result.makespan << " s\n";
  out << "module utilization:";
  for (double u : result.module_utilization) out << " " << u;
  out << "\n";
  if (result.fault_impact.has_value()) {
    const FaultImpact& f = *result.fault_impact;
    out << "faults: " << f.crash_events << " crash, " << f.slowdown_events
        << " slowdown, " << f.link_events << " link; " << f.reroutes
        << " data sets rerouted\n";
  }

  const auto policy_name = flags.Get("repair-policy");
  if (!policy_name) return 0;
  if (plan.FirstCrash() == nullptr) {
    out << "repair: no crash events in the plan; nothing to repair\n";
    return 0;
  }

  RepairRequest rr;
  rr.chain = &problem.chain;
  rr.machine = problem.machine;
  rr.failed_mapping = mapping;
  rr.policy = RepairPolicyFromName(*policy_name);
  if (const auto deadline = flags.Get("solver-deadline")) {
    rr.solver_deadline_s = CheckedDouble("solver-deadline", *deadline);
    if (rr.solver_deadline_s < 0.0) {
      throw UsageError("--solver-deadline must be positive (0 disables"
                       " the deadline), got " + *deadline);
    }
  }
  ApplyCrashToRequest(rr, plan);
  const RepairOutcome outcome = RepairEngine().Repair(rr);

  out << "repair (" << ToString(rr.policy) << "): module " << rr.failed_module
      << " lost " << rr.failed_instances << " instance(s)\n";
  out << "  repaired mapping: " << outcome.mapping.ToString(problem.chain)
      << "\n";
  out << "  throughput: " << outcome.pre_fault_throughput << " -> "
      << outcome.post_fault_throughput << " data sets/s (retention "
      << outcome.throughput_retention << ")\n";
  out << "  recovery: " << outcome.repair_seconds << " s, "
      << outcome.attempts << " solve attempt(s), "
      << (outcome.degraded ? "degraded (drop-replica)"
                           : "remapped via " + outcome.solver)
      << (outcome.timed_out ? ", timed out (best incumbent)" : "") << "\n";

  // Prove the repaired mapping actually runs on the survivors: replay it
  // fault-free (the crashed instances no longer exist in the new mapping).
  SimOptions verify = options;
  verify.faults = nullptr;
  const SimResult repaired = sim.Run(outcome.mapping, verify);
  out << "  post-repair simulated throughput: " << repaired.throughput
      << " data sets/s\n";
  return 0;
}

int ReportCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("report", args, 1,
                    {"chain", "machine", "procs", "threads", "algorithm",
                     "datasets", "noise", "seed", "solver-deadline", "out",
                     "metrics", "trace", "cache-dir", "cache-dir-max-bytes"},
                    {"unconstrained", "engine-cache"});
  const LoadedProblem problem = Load(flags);
  // The report always embeds a metrics snapshot of its own run, so the
  // registry is armed regardless of --metrics (which additionally writes
  // the snapshot to its own file, like every other command).
  const ObservationSession observation(flags);
  MetricsRegistry::Global().Reset();
  const ScopedMetricsEnable metrics_on(true);
  const auto trace_path = flags.Get("trace");

  const MapRequest request = BuildMapRequest(flags, problem);
  const int procs = request.total_procs;
  const Evaluator eval(problem.chain, procs,
                       problem.machine.node_memory_bytes,
                       request.options.num_threads);
  Mapping mapping = MappingEngine::Shared().Map(request).mapping;
  if (!flags.Has("unconstrained")) {
    mapping = FeasibilityChecker(problem.machine).MakeFeasible(mapping, eval);
  }

  SimOptions sim_options;
  sim_options.num_datasets = flags.GetInt("datasets", 400);
  sim_options.warmup = sim_options.num_datasets / 4;
  const double noise = flags.GetDouble("noise", 0.0);
  sim_options.noise.systematic_stddev = noise;
  sim_options.noise.jitter_stddev = noise / 3.0;
  sim_options.noise.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  const SimResult result =
      PipelineSimulator(problem.chain).Run(mapping, sim_options);
  const BottleneckAttribution attribution =
      AttributeBottleneck(eval, mapping, result, sim_options.num_datasets);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  RunReportOptions report_options;
  report_options.num_datasets = sim_options.num_datasets;
  report_options.metrics = &snapshot;
  if (trace_path) report_options.trace_path = *trace_path;
  const std::string report =
      BuildRunReportJson(eval, mapping, result, attribution, report_options);

  if (const auto path = flags.Get("out")) {
    WriteTextFile(*path, report);
    out << "wrote " << *path << "\n";
    out << "mapping: " << mapping.ToString(problem.chain) << "\n";
    out << RenderAttribution(attribution);
  } else {
    out << report;
  }
  observation.Write(out);
  return 0;
}

int ExplainCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("explain", args, 1, {"chain", "machine", "mapping"});
  const LoadedProblem problem = Load(flags);
  const Mapping mapping =
      ParseMapping(ReadTextFile(flags.Require("mapping")));
  const Evaluator eval(problem.chain, problem.machine.total_procs(),
                       problem.machine.node_memory_bytes);
  out << ExplainMapping(eval, mapping).Render(problem.chain);
  return 0;
}

int FrontierCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("frontier", args, 1,
                    {"chain", "machine", "points", "threads", "metrics",
                     "trace"},
                    {"engine-cache"});
  const LoadedProblem problem = Load(flags);
  const ObservationSession observation(flags);
  const int P = problem.machine.total_procs();
  MapRequest request;
  request.chain = &problem.chain;
  request.machine = problem.machine;
  request.options.num_threads = flags.GetInt("threads", 0);
  request.use_cache = flags.Has("engine-cache");
  const int points = flags.GetInt("points", 6);
  SweepStats stats;
  const std::vector<FrontierPoint> frontier =
      MappingEngine::Shared().Frontier(request, points, &stats);
  out << "latency/throughput Pareto frontier (" << P << " processors):\n";
  for (const FrontierPoint& p : frontier) {
    out << "  " << p.throughput << " data sets/s @ " << p.latency * 1000.0
        << " ms   " << p.mapping.ToString(problem.chain) << "\n";
  }
  out << "warm start: " << stats.warm_tables_reused << " of " << stats.solves
      << " DP solves reused range tables\n";
  if (flags.Has("engine-cache")) {
    out << "engine cache: " << (stats.cache_hits > 0 ? "hit" : "miss")
        << "\n";
  }
  observation.Write(out);
  return 0;
}

int DiagnoseCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("diagnose", args, 1, {"chain", "machine"});
  const LoadedProblem problem = Load(flags);
  const Evaluator eval(problem.chain, problem.machine.total_procs(),
                       problem.machine.node_memory_bytes);
  const ChainDiagnostics d = DiagnoseChain(eval);
  out << "theorem preconditions for this chain:\n" << d.Summary();
  out << "guarantees:\n";
  out << "  Theorem 1 (bottleneck-only greedy optimal): "
      << (d.Theorem1Applies() ? "applies" : "does not apply") << "\n";
  out << "  Theorem 2 (greedy within 2 procs/task):      "
      << (d.Theorem2Applies() ? "applies" : "does not apply") << "\n";
  out << "  Maximal replication provably optimal:       "
      << (d.MaximalReplicationSafe() ? "yes" : "no") << "\n";
  return 0;
}

int SensitivityCommand(const std::vector<std::string>& args,
                       std::ostream& out) {
  const Flags flags("sensitivity", args, 1, {"chain", "machine", "mapping"});
  const LoadedProblem problem = Load(flags);
  const Mapping mapping =
      ParseMapping(ReadTextFile(flags.Require("mapping")));
  const Evaluator eval(problem.chain, problem.machine.total_procs(),
                       problem.machine.node_memory_bytes);
  const SensitivityReport report = AnalyzeSensitivity(eval, mapping);
  out << "mapping: " << mapping.ToString(problem.chain) << "\n";
  out << "predicted throughput: " << report.base_throughput
      << " data sets/s\n";
  out << report.Summary(problem.chain, 12);
  return 0;
}

int SizeCommand(const std::vector<std::string>& args, std::ostream& out) {
  const Flags flags("size", args, 1,
                    {"chain", "machine", "target", "threads", "metrics",
                     "trace"},
                    {"engine-cache"});
  const LoadedProblem problem = Load(flags);
  const ObservationSession observation(flags);
  const double target = CheckedDouble("target", flags.Require("target"));
  const int max_procs = problem.machine.total_procs();
  MapRequest request;
  request.chain = &problem.chain;
  request.machine = problem.machine;
  request.options.num_threads = flags.GetInt("threads", 0);
  request.use_cache = flags.Has("engine-cache");
  const ProcCountResult r = MappingEngine::Shared().MinProcs(request, target);
  out << "target throughput: " << target << " data sets/s\n";
  out << "minimum processors: " << r.procs << " (of " << max_procs << ")\n";
  out << "achieved: " << r.throughput << " data sets/s with "
      << r.mapping.ToString(problem.chain) << "\n";
  observation.Write(out);
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  try {
    const std::string& command = args[0];
    if (command == "export-workload") return ExportWorkload(args, out);
    if (command == "map") return MapCommand(args, out);
    if (command == "simulate") return SimulateCommand(args, out);
    if (command == "report") return ReportCommand(args, out);
    if (command == "explain") return ExplainCommand(args, out);
    if (command == "frontier") return FrontierCommand(args, out);
    if (command == "diagnose") return DiagnoseCommand(args, out);
    if (command == "sensitivity") return SensitivityCommand(args, out);
    if (command == "size") return SizeCommand(args, out);
    out << "unknown command: " << command << "\n" << kUsage;
    return 1;
  } catch (const UsageError& e) {
    out << "error: " << e.what() << "\n" << kUsage;
    return 1;
  } catch (const InvalidArgument& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  } catch (const Error& e) {
    out << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace pipemap::cli
