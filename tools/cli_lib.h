// Command-line front end for the pipemap library (logic only; main() is in
// pipemap_cli.cpp so tests can drive the same code paths).
//
// Commands:
//   export-workload <fft256|fft512|radar|stereo> <message|systolic>
//                   --chain-out F --machine-out F
//       Writes a built-in workload's (tabulated) cost model and machine.
//   map       --chain F --machine F [--procs N]
//             [--algorithm dp|greedy|auto|brute]
//             [--objective throughput|latency] [--floor X]
//             [--replication maximal|none|search] [--no-clustering]
//             [--unconstrained] [--engine-cache] [--threads N]
//             [--solver-deadline S] [--out F]
//       Computes a mapping (through the MappingEngine facade) and prints
//       prediction details. --algorithm auto runs the solver portfolio;
//       --engine-cache serves repeated identical requests from the
//       in-process solution cache. --threads 0 (default) uses all
//       hardware threads; 1 forces the serial path.
//   simulate  --chain F --machine F --mapping F [--datasets N]
//             [--noise X] [--seed N] [--faults FILE|SPEC]
//             [--repair-policy full|drop-replica|floor]
//             [--solver-deadline S]
//       Executes a mapping in the pipeline simulator, optionally under an
//       injected fault plan (crashes, slowdowns, link degradation). With
//       --repair-policy, a crash triggers the RepairEngine and the
//       recovery report is printed.
//   report    --chain F --machine F [--procs N]
//             [--algorithm dp|greedy|auto|brute] [--engine-cache]
//             [--datasets N] [--noise X] [--seed N] [--out F] [--trace F]
//       Maps, simulates, and emits one machine-readable JSON run report
//       (predicted vs simulated performance, per-module utilization, a
//       ranked bottleneck-divergence list, embedded metrics snapshot).
//   diagnose  --chain F --machine F
//       Reports which of the paper's theorem preconditions hold.
//   size      --chain F --machine F --target X
//       Minimum processors needed to reach a target throughput.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pipemap::cli {

/// Runs one CLI invocation; `args` excludes the program name. Writes
/// human-readable output to `out` and returns a process exit code
/// (0 success, 1 usage error, 2 runtime failure).
int RunCli(const std::vector<std::string>& args, std::ostream& out);

}  // namespace pipemap::cli
