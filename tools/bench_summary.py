#!/usr/bin/env python3
"""Aggregate BENCH_*.json result files into one summary.

Every bench binary in bench/ writes a JSON document with a "bench" name
and a bench-specific shape (scalars, arrays of rungs/runs, nested
objects). CI produces several of them per run; this tool flattens each
into dotted-key scalars and prints one combined table, so a run's whole
benchmark story is readable in one artifact.

Arrays of objects are summarized: their length, plus the numeric fields
of the LAST element (benches order rungs by increasing load/threads, so
the last element is the headline number). Long scalar arrays report only
their length.

Usage: bench_summary.py BENCH_a.json BENCH_b.json ... [--out summary.json]
Exit 0 on success, 1 when an input is unreadable or not valid JSON.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"bench_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def flatten(value, prefix, out):
    if isinstance(value, dict):
        for key, inner in value.items():
            flatten(inner, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(value, list):
        out[f"{prefix}.len"] = len(value)
        if value and isinstance(value[-1], dict):
            # Last element carries the headline numbers (highest rung);
            # flatten it recursively so nested sections (e.g. an app's
            # persist tier) survive into the summary.
            flatten(value[-1], f"{prefix}.last", out)
    elif isinstance(value, (int, float, bool, str)):
        out[prefix] = value
    # null and other shapes are dropped


def render(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        return value if len(value) <= 40 else value[:37] + "..."
    return str(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--out", default=None,
                        help="also write the combined summary as JSON")
    args = parser.parse_args()

    combined = {}
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")
        name = doc.get("bench") if isinstance(doc, dict) else None
        if not isinstance(name, str) or not name:
            name = path.rsplit("/", 1)[-1]
            if name.startswith("BENCH_"):
                name = name[len("BENCH_"):]
            if name.endswith(".json"):
                name = name[: -len(".json")]
        flat = {}
        flatten(doc, "", flat)
        flat.pop("bench", None)
        combined[name] = flat

    width = max((len(k) for flat in combined.values() for k in flat),
                default=0)
    for name in sorted(combined):
        print(f"== {name} ==")
        for key in sorted(combined[name]):
            print(f"  {key:<{width}}  {render(combined[name][key])}")
        print()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(combined, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_summary: wrote {args.out}")


if __name__ == "__main__":
    main()
