#!/usr/bin/env python3
"""Validate a Prometheus text exposition (v0.0.4).

Accepts either a raw exposition file or a pipemap `metrics` op JSON
response (detected by a leading '{'; the exposition is unwrapped from the
"exposition" field). Checks the invariants the server promises:

  * every non-comment line is `name[{labels}] value` with a legal metric
    name and a parseable value;
  * a family's `# TYPE` line precedes every one of its samples, and
    `# HELP`/`# TYPE` name the same family they annotate;
  * histogram families export cumulative `_bucket{le="..."}` series with
    nondecreasing counts, a final `le="+Inf"` bucket, and
    `+Inf == _count`;
  * an empty document is valid (the zero-series exposition the
    PIPEMAP_NO_OBSERVABILITY build serves).

Exit 0 when valid, 1 with a reason on stderr otherwise.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def fail(msg):
    print(f"check_prometheus: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def family_of(sample_name, histogram_families):
    """The family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in histogram_families:
                return base
    return sample_name


def load_exposition(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if text.lstrip().startswith("{"):
        doc = json.loads(text)
        if "exposition" not in doc:
            fail(f"{path}: JSON input has no 'exposition' field")
        if doc.get("ok") is not True:
            fail(f"{path}: metrics response is not ok")
        return doc["exposition"]
    return text


def check(text):
    types = {}  # family -> type
    histogram_families = set()
    helped = set()
    buckets = {}  # family -> list of (le, count)
    counts = {}  # family -> _count value
    samples = 0

    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed HELP line: {line!r}")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                fail(f"line {lineno}: unknown metric type {kind!r}")
            if name in types:
                fail(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            if kind == "histogram":
                histogram_families.add(name)
            continue
        if line.startswith("#"):
            continue  # other comments are legal

        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: malformed sample line: {line!r}")
        samples += 1
        name = m.group("name")
        value = parse_value(m.group("value"))
        family = family_of(name, histogram_families)
        if family not in types:
            fail(f"line {lineno}: sample {name!r} has no preceding TYPE")

        if types[family] == "histogram":
            if name == family + "_bucket":
                labels = m.group("labels") or ""
                le = None
                for item in labels.split(","):
                    if item.startswith('le="') and item.endswith('"'):
                        le = item[4:-1]
                if le is None:
                    fail(f"line {lineno}: histogram bucket without le label")
                buckets.setdefault(family, []).append(
                    (parse_value(le), value))
            elif name == family + "_count":
                counts[family] = value

    for family in histogram_families:
        series = buckets.get(family, [])
        if not series:
            fail(f"histogram {family} exports no buckets")
        prev_le, prev_count = None, -1.0
        for le, count in series:
            if prev_le is not None and le <= prev_le:
                fail(f"histogram {family}: le bounds not increasing")
            if count < prev_count:
                fail(f"histogram {family}: cumulative counts decrease "
                     f"at le={le}")
            prev_le, prev_count = le, count
        if series[-1][0] != float("inf"):
            fail(f"histogram {family}: last bucket is not +Inf")
        if family not in counts:
            fail(f"histogram {family}: missing _count")
        if series[-1][1] != counts[family]:
            fail(f"histogram {family}: +Inf bucket {series[-1][1]} != "
                 f"_count {counts[family]}")

    return samples, len(types)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="exposition file or metrics-op JSON")
    parser.add_argument("--require-families", type=int, default=0,
                        help="fail unless at least N families are present")
    args = parser.parse_args()

    text = load_exposition(args.path)
    samples, families = check(text)
    if families < args.require_families:
        fail(f"only {families} families present, "
             f"need >= {args.require_families}")
    print(f"check_prometheus: OK ({families} families, {samples} samples)")


if __name__ == "__main__":
    main()
