// pipemap_server: the mapping-as-a-service daemon.
//
// Binds the TCP listener (src/server/server.h), prints the bound
// address on stdout (machine-parsable, flushed — CI and the tests read
// the port from it when binding port 0), then blocks until SIGTERM or
// SIGINT. Signals are observed via the self-pipe trick so the handler
// stays async-signal-safe; the main thread then runs the graceful drain:
// admitted solves finish (bounded by their own deadlines), new requests
// get clean `draining` errors, and the process exits 0 with a final
// counters document on stdout.
//
// Observability flags (DESIGN.md §9): --access-log writes the structured
// per-request JSONL log, --trace records server/engine spans and dumps
// Chrome trace JSON at drain, and --slo-* configure the rolling-window
// objectives whose burn state lands in `stats`, the `metrics` op, and
// the final drain document.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "server/server.h"
#include "support/chaos.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/parse.h"
#include "support/tracer.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // Best-effort: a full pipe already has a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pipemap_server [--host ADDR] [--port N]\n"
      "                      [--workers N] [--queue N]\n"
      "                      [--cache-dir DIR] [--cache-dir-max-bytes N]\n"
      "                      [--access-log PATH] [--access-log-max-bytes N]\n"
      "                      [--trace PATH]\n"
      "                      [--slo-p99-ms X] [--slo-error-rate X]\n"
      "                      [--slo-window-s N]\n"
      "                      [--no-overload] [--shed-watermark X]\n"
      "                      [--brownout-after-s X] [--recover-after-s X]\n"
      "                      [--degraded-deadline-s X]\n"
      "                      [--idle-timeout-s X]\n"
      "                      [--solver-breaker-failures N]\n"
      "                      [--solver-breaker-cooldown-s X]\n"
      "                      [--chaos SPEC]\n"
      "\n"
      "Runs the mapping daemon until SIGTERM/SIGINT, then drains:\n"
      "in-flight solves finish or time out, new requests are\n"
      "refused with a clean error, and the process exits 0.\n"
      "--port 0 (default) binds an ephemeral port; the bound\n"
      "address is printed on stdout as 'listening HOST PORT'.\n"
      "--access-log appends one JSONL line per request (trace_id, op,\n"
      "bytes, queue wait, solve time, status); --trace dumps Chrome\n"
      "trace JSON on drain; --slo-* set the rolling-window objectives\n"
      "surfaced by the stats and metrics ops.\n"
      "--cache-dir persists solved mappings (one checksummed file per\n"
      "fingerprint): a daemon restarted onto the same directory serves\n"
      "previously solved requests as cache hits without re-solving.\n"
      "--cache-dir-max-bytes bounds the directory: crossing it evicts\n"
      "oldest entries. The directory is advisorily locked; a second\n"
      "daemon on the same directory falls back to read-only probing.\n"
      "Overload resilience (DESIGN.md §12): when the SLO window burns\n"
      "or the queue passes --shed-watermark of capacity, new solves are\n"
      "refused fast with an `overloaded` error and a retry_after_ms\n"
      "hint; burn sustained past --brownout-after-s downgrades solves\n"
      "to greedy-only under --degraded-deadline-s (responses carry\n"
      "degraded: true) until the burn clears for --recover-after-s.\n"
      "--idle-timeout-s reaps connections whose peer stalls mid-frame.\n"
      "--chaos arms the deterministic fault injector (seed=N,\n"
      "seam=prob[:Nms] entries; seams: read_delay, read_trunc,\n"
      "conn_drop, solver_slow, persist_write_fail, persist_read_fail).\n"
      "The PIPEMAP_CHAOS environment variable is an alternative spec\n"
      "source; --chaos wins when both are set.\n");
  return 2;
}

int CheckedFlag(const char* name, const std::string& value) {
  const std::optional<int> v = pipemap::TryParseInt(value);
  if (!v) {
    std::fprintf(stderr, "pipemap_server: %s needs an integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return *v;
}

double CheckedDoubleFlag(const char* name, const std::string& value) {
  const std::optional<double> v = pipemap::TryParseDouble(value);
  if (!v) {
    std::fprintf(stderr, "pipemap_server: %s needs a number, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  pipemap::server::ServerConfig config;
  std::string trace_path;
  std::string chaos_spec;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "pipemap_server: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--host") {
      config.host = value();
    } else if (arg == "--port") {
      config.port = CheckedFlag("--port", value());
    } else if (arg == "--workers") {
      config.num_workers = CheckedFlag("--workers", value());
    } else if (arg == "--queue") {
      config.queue_capacity =
          static_cast<std::size_t>(CheckedFlag("--queue", value()));
    } else if (arg == "--cache-dir") {
      config.cache_dir = value();
    } else if (arg == "--cache-dir-max-bytes") {
      config.cache_dir_max_bytes = static_cast<std::uint64_t>(
          CheckedFlag("--cache-dir-max-bytes", value()));
    } else if (arg == "--no-overload") {
      config.overload_enabled = false;
    } else if (arg == "--shed-watermark") {
      config.shed_watermark = CheckedDoubleFlag("--shed-watermark", value());
    } else if (arg == "--brownout-after-s") {
      config.brownout_after_s =
          CheckedDoubleFlag("--brownout-after-s", value());
    } else if (arg == "--recover-after-s") {
      config.recover_after_s = CheckedDoubleFlag("--recover-after-s", value());
    } else if (arg == "--degraded-deadline-s") {
      config.degraded_deadline_s =
          CheckedDoubleFlag("--degraded-deadline-s", value());
    } else if (arg == "--idle-timeout-s") {
      config.idle_timeout_s = CheckedDoubleFlag("--idle-timeout-s", value());
    } else if (arg == "--solver-breaker-failures") {
      config.solver_breaker_failures =
          CheckedFlag("--solver-breaker-failures", value());
    } else if (arg == "--solver-breaker-cooldown-s") {
      config.solver_breaker_cooldown_s =
          CheckedDoubleFlag("--solver-breaker-cooldown-s", value());
    } else if (arg == "--chaos") {
      chaos_spec = value();
    } else if (arg == "--access-log") {
      config.access_log_path = value();
    } else if (arg == "--access-log-max-bytes") {
      config.access_log_max_bytes = static_cast<std::size_t>(
          CheckedFlag("--access-log-max-bytes", value()));
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--slo-p99-ms") {
      config.slo_p99_ms = CheckedDoubleFlag("--slo-p99-ms", value());
    } else if (arg == "--slo-error-rate") {
      config.slo_max_error_rate =
          CheckedDoubleFlag("--slo-error-rate", value());
    } else if (arg == "--slo-window-s") {
      config.slo_window_s = CheckedFlag("--slo-window-s", value());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "pipemap_server: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipemap_server: pipe");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    if (!chaos_spec.empty()) {
      pipemap::ChaosInjector::Global().Configure(
          pipemap::ParseChaosSpec(chaos_spec));
      std::fprintf(stderr, "pipemap_server: chaos armed: %s\n",
                   chaos_spec.c_str());
    } else if (const std::optional<std::string> env =
                   pipemap::ConfigureChaosFromEnv()) {
      std::fprintf(stderr, "pipemap_server: chaos armed from PIPEMAP_CHAOS: %s\n",
                   env->c_str());
    }
  } catch (const std::exception& e) {
    // A mistyped storm must fail loudly, not silently run fault-free.
    std::fprintf(stderr, "pipemap_server: %s\n", e.what());
    return 2;
  }

  const pipemap::ScopedMetricsEnable metrics_on(true);
  if (!trace_path.empty()) pipemap::Tracer::Global().Enable(true);
  pipemap::server::PipemapServer server(config);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pipemap_server: %s\n", e.what());
    return 1;
  }
  std::printf("listening %s %d\n", config.host.c_str(), server.port());
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "pipemap_server: signal received, draining\n");
  server.Drain();

  if (!trace_path.empty()) {
    if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
      const std::string json = pipemap::Tracer::Global().ToChromeJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "pipemap_server: cannot write trace to %s\n",
                   trace_path.c_str());
    }
  }

  const pipemap::server::ServerCounters counters = server.counters();
  const pipemap::server::SloState slo = server.slo();
  const pipemap::AccessLogger::Stats log_stats = server.access_log_stats();
  pipemap::JsonWriter w;
  w.BeginObject();
  w.Key("drained").Bool(true);
  w.Key("connections").UInt(counters.connections);
  w.Key("accepted").UInt(counters.accepted);
  w.Key("rejected").UInt(counters.rejected);
  w.Key("completed").UInt(counters.completed);
  w.Key("timed_out").UInt(counters.timed_out);
  w.Key("parse_errors").UInt(counters.parse_errors);
  w.Key("shed").UInt(counters.shed);
  w.Key("degraded").UInt(counters.degraded);
  w.Key("idle_timeouts").UInt(counters.idle_timeouts);
  w.Key("breaker_fast_fails").UInt(counters.breaker_fast_fails);
  const pipemap::server::OverloadState overload = server.overload_state();
  w.Key("overload").BeginObject();
  w.Key("degraded").Bool(overload.degraded);
  w.Key("brownout_entries").UInt(overload.brownout_entries);
  w.Key("brownout_recoveries").UInt(overload.brownout_recoveries);
  w.EndObject();
  pipemap::ChaosInjector& chaos = pipemap::ChaosInjector::Global();
  if (chaos.enabled()) {
    const pipemap::ChaosStats chaos_stats = chaos.stats();
    w.Key("chaos").BeginObject();
    for (int s = 0; s < pipemap::kChaosSeamCount; ++s) {
      w.Key(pipemap::ChaosSeamName(static_cast<pipemap::ChaosSeam>(s)))
          .UInt(chaos_stats.injected[s]);
    }
    w.EndObject();
  }
  w.Key("slo").BeginObject();
  w.Key("window_s").Int(slo.window_s);
  w.Key("requests").UInt(slo.requests);
  w.Key("errors").UInt(slo.errors);
  w.Key("error_rate").Double(slo.error_rate);
  w.Key("p50_ms").Double(slo.p50_ms);
  w.Key("p99_ms").Double(slo.p99_ms);
  w.Key("p99_burn_ratio").Double(slo.p99_burn_ratio);
  w.Key("error_burn_ratio").Double(slo.error_burn_ratio);
  w.Key("burning").Bool(slo.burning);
  w.EndObject();
  w.Key("access_log").BeginObject();
  w.Key("lines_written").UInt(log_stats.lines_written);
  w.Key("lines_dropped").UInt(log_stats.lines_dropped);
  w.Key("rotations").UInt(log_stats.rotations);
  w.Key("bytes_written").UInt(log_stats.bytes_written);
  w.EndObject();
  w.EndObject();
  std::fputs(w.str().c_str(), stdout);
  return 0;
}
