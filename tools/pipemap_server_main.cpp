// pipemap_server: the mapping-as-a-service daemon.
//
// Binds the TCP listener (src/server/server.h), prints the bound
// address on stdout (machine-parsable, flushed — CI and the tests read
// the port from it when binding port 0), then blocks until SIGTERM or
// SIGINT. Signals are observed via the self-pipe trick so the handler
// stays async-signal-safe; the main thread then runs the graceful drain:
// admitted solves finish (bounded by their own deadlines), new requests
// get clean `draining` errors, and the process exits 0 with a final
// counters document on stdout.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "server/server.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/parse.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // Best-effort: a full pipe already has a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::fprintf(stderr,
               "usage: pipemap_server [--host ADDR] [--port N]\n"
               "                      [--workers N] [--queue N]\n"
               "\n"
               "Runs the mapping daemon until SIGTERM/SIGINT, then drains:\n"
               "in-flight solves finish or time out, new requests are\n"
               "refused with a clean error, and the process exits 0.\n"
               "--port 0 (default) binds an ephemeral port; the bound\n"
               "address is printed on stdout as 'listening HOST PORT'.\n");
  return 2;
}

int CheckedFlag(const char* name, const std::string& value) {
  const std::optional<int> v = pipemap::TryParseInt(value);
  if (!v) {
    std::fprintf(stderr, "pipemap_server: %s needs an integer, got '%s'\n",
                 name, value.c_str());
    std::exit(2);
  }
  return *v;
}

}  // namespace

int main(int argc, char** argv) {
  pipemap::server::ServerConfig config;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "pipemap_server: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--host") {
      config.host = value();
    } else if (arg == "--port") {
      config.port = CheckedFlag("--port", value());
    } else if (arg == "--workers") {
      config.num_workers = CheckedFlag("--workers", value());
    } else if (arg == "--queue") {
      config.queue_capacity =
          static_cast<std::size_t>(CheckedFlag("--queue", value()));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "pipemap_server: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipemap_server: pipe");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = OnSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  const pipemap::ScopedMetricsEnable metrics_on(true);
  pipemap::server::PipemapServer server(config);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pipemap_server: %s\n", e.what());
    return 1;
  }
  std::printf("listening %s %d\n", config.host.c_str(), server.port());
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "pipemap_server: signal received, draining\n");
  server.Drain();

  const pipemap::server::ServerCounters counters = server.counters();
  pipemap::JsonWriter w;
  w.BeginObject();
  w.Key("drained").Bool(true);
  w.Key("connections").UInt(counters.connections);
  w.Key("accepted").UInt(counters.accepted);
  w.Key("rejected").UInt(counters.rejected);
  w.Key("completed").UInt(counters.completed);
  w.Key("timed_out").UInt(counters.timed_out);
  w.Key("parse_errors").UInt(counters.parse_errors);
  w.EndObject();
  std::fputs(w.str().c_str(), stdout);
  return 0;
}
